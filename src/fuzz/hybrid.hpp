// Hybrid verification — the paper's future work ("we plan to focus on
// hybrid techniques combining symbolic execution with fuzzing to provide
// a scalable and comprehensive verification methodology").
//
// Strategy: spend a cheap concrete-random budget first (high throughput,
// catches broad faults almost immediately), then fall back to the
// symbolic engine for the corner cases random testing cannot reach.
// The report records which phase found the mismatch and the combined
// cost, so the hybrid can be compared against either pure technique.
#pragma once

#include "core/cosim.hpp"
#include "fuzz/fuzzer.hpp"
#include "symex/engine.hpp"

namespace rvsym::fuzz {

struct HybridOptions {
  FuzzOptions fuzz;                ///< phase-1 budget
  symex::EngineOptions symex;      ///< phase-2 budget

  HybridOptions() {
    fuzz.max_tests = 20000;
    fuzz.max_seconds = 5;
    symex.stop_on_error = true;
    symex.max_seconds = 120;
  }
};

struct HybridReport {
  enum class FoundBy { None, Fuzzing, Symbolic };
  FoundBy found_by = FoundBy::None;
  bool found() const { return found_by != FoundBy::None; }
  double fuzz_seconds = 0;
  double symex_seconds = 0;
  double totalSeconds() const { return fuzz_seconds + symex_seconds; }
  std::uint64_t fuzz_tests = 0;
  std::uint64_t symex_paths = 0;
  std::string message;
};

/// Runs the two phases against `config` (which carries the DUT bugs /
/// injected faults and scenario constraints).
HybridReport runHybrid(expr::ExprBuilder& eb, const core::CosimConfig& config,
                       const HybridOptions& options);

}  // namespace rvsym::fuzz
