#include "fuzz/hybrid.hpp"

namespace rvsym::fuzz {

HybridReport runHybrid(expr::ExprBuilder& eb, const core::CosimConfig& config,
                       const HybridOptions& options) {
  HybridReport report;

  // Phase 1: concrete random testing.
  CosimFuzzer fuzzer;
  const FuzzReport fr = fuzzer.run(config, options.fuzz);
  report.fuzz_seconds = fr.seconds;
  report.fuzz_tests = fr.tests;
  if (fr.found) {
    report.found_by = HybridReport::FoundBy::Fuzzing;
    report.message = fr.mismatch_message;
    return report;
  }

  // Phase 2: symbolic exploration.
  core::CoSimulation cosim(eb, config);
  symex::Engine engine(eb, options.symex);
  const symex::EngineReport sr = engine.run(cosim.program());
  report.symex_seconds = sr.seconds;
  report.symex_paths = sr.totalPaths();
  if (sr.error_paths > 0) {
    report.found_by = HybridReport::FoundBy::Symbolic;
    if (const symex::PathRecord* err = sr.firstError())
      report.message = err->message;
  }
  return report;
}

}  // namespace rvsym::fuzz
