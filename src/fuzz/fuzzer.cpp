#include "fuzz/fuzzer.hpp"

#include <chrono>

#include "core/voter.hpp"
#include "iss/iss.hpp"
#include "rtl/core.hpp"
#include "rv32/encode.hpp"
#include "rv32/instr.hpp"

namespace rvsym::fuzz {

using expr::ExprRef;

expr::ExprRef RandomImage::byteAt(symex::ExecState& st, std::uint32_t addr) {
  // splitmix-style hash of (seed, addr): stable per test, concrete.
  std::uint64_t z = (static_cast<std::uint64_t>(seed_) << 32) | addr;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return st.builder().constant(z & 0xFF, 8);
}

std::uint64_t CosimFuzzer::next(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1DULL;
}

std::uint32_t CosimFuzzer::randomInstruction(std::uint64_t& rng_state,
                                             const FuzzOptions& options) {
  for (int attempts = 0; attempts < 64; ++attempts) {
    std::uint32_t word = static_cast<std::uint32_t>(next(rng_state));
    if (next(rng_state) % 100 < options.valid_bias_percent) {
      // Mutate a valid encoding: keep the pattern bits, randomize the rest.
      const auto table = rv32::decodeTable();
      const rv32::DecodePattern& p =
          table[next(rng_state) % table.size()];
      word = (word & ~p.mask) | p.match;
      if (options.small_reg_bias) {
        // Rewrite rd/rs1/rs2 into x0..x3.
        word &= ~((31u << 7) | (31u << 15) | (31u << 20));
        word |= (next(rng_state) & 3u) << 7;
        word |= (next(rng_state) & 3u) << 15;
        word |= (next(rng_state) & 3u) << 20;
        // Re-apply the pattern (shift encodings etc. fix rs2/funct7).
        word = (word & ~p.mask) | p.match;
      }
    }
    if (options.block_system && (word & 0x7F) == 0x73) continue;
    return word;
  }
  return rv32::enc::nop();
}

FuzzReport CosimFuzzer::run(const core::CosimConfig& config,
                            const FuzzOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  FuzzReport report;
  std::uint64_t rng = (static_cast<std::uint64_t>(options.seed) << 1) | 1;

  expr::ExprBuilder eb;

  while ((options.max_tests == 0 || report.tests < options.max_tests) &&
         (options.max_seconds == 0 || elapsed() < options.max_seconds)) {
    ++report.tests;
    const std::uint32_t test_seed = static_cast<std::uint32_t>(next(rng));

    symex::ExecState st(eb, {}, {});
    RandomImage image(test_seed);
    core::SymbolicDataMemory rtl_mem(image);
    core::SymbolicDataMemory iss_mem(image);

    // Concrete random instruction stream, cached per address like the
    // symbolic instruction memory.
    struct FuzzInstrSource final : iss::InstrSourceIf {
      std::uint64_t rng;
      const FuzzOptions& options;
      expr::ExprBuilder& eb;
      std::unordered_map<std::uint32_t, std::uint32_t> cache;
      std::uint32_t first_word = 0;
      FuzzInstrSource(std::uint64_t r, const FuzzOptions& o,
                      expr::ExprBuilder& b)
          : rng(r), options(o), eb(b) {}
      ExprRef fetch(symex::ExecState&, std::uint32_t addr) override {
        auto it = cache.find(addr);
        if (it == cache.end()) {
          const std::uint32_t word =
              CosimFuzzer::randomInstruction(rng, options);
          if (cache.empty()) first_word = word;
          it = cache.emplace(addr, word).first;
        }
        return eb.constant(it->second, 32);
      }
    } imem(next(rng), options, eb);

    rtl::RtlConfig rtl_cfg = config.rtl;
    rtl_cfg.faults = rtl_cfg.faults | config.faults;
    rtl::MicroRv32Core core(eb, rtl_cfg);
    for (const core::CosimConfig::DecodeDontCare& dc :
         config.decode_dont_cares)
      for (rv32::DecodePattern& p : core.decodeTableMut())
        if (p.op == dc.op) p.mask &= ~(1u << dc.bit);

    iss::Iss iss(eb, imem, iss_mem, config.iss);
    core::Voter voter;

    for (unsigned i = 1; i <= options.num_random_regs && i < 32; ++i) {
      const ExprRef v = eb.constant(next(rng) & 0xFFFFFFFF, 32);
      core.regs().set(eb, i, v);
      iss.regs().set(eb, i, v);
    }

    unsigned retired = 0;
    const unsigned cycle_limit = 40 * options.instr_limit + 24;
    bool mismatch = false;
    try {
      for (unsigned cycle = 0; cycle < cycle_limit && !mismatch; ++cycle) {
        core.tick(st);
        if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
          core.ibus.instruction = imem.fetch(st, core.ibus.address);
          core.ibus.instruction_ready = true;
        } else if (!core.ibus.fetch_enable) {
          core.ibus.instruction_ready = false;
        }
        if (core.dbus.enable && !core.dbus.data_ready) {
          if (core.dbus.write)
            rtl_mem.storeStrobed(st, core.dbus.address, core.dbus.strobe,
                                 core.dbus.wdata);
          else
            core.dbus.rdata =
                rtl_mem.loadStrobed(st, core.dbus.address, core.dbus.strobe);
          core.dbus.data_ready = true;
        } else if (!core.dbus.enable) {
          core.dbus.data_ready = false;
        }
        if (core.rvfi.valid) {
          ++report.instructions;
          const iss::RetireInfo iss_r = iss.step(st);
          if (std::optional<core::Mismatch> m =
                  voter.compare(st, core.rvfi.info, iss_r)) {
            mismatch = true;
            report.found = true;
            report.mismatch_message = core::Voter::describe(*m);
            report.witness_instr = imem.first_word;
          }
          if (++retired >= options.instr_limit) break;
        }
      }
    } catch (const symex::PathTerminated&) {
      // A fully concrete test never forks; a termination here would be an
      // infeasible assume from the config's constraint hook — skip it.
    }
    if (report.found) break;
  }

  report.seconds = elapsed();
  return report;
}

}  // namespace rvsym::fuzz
