// Concrete random-testing baseline (the paper's point of comparison).
//
// The paper motivates symbolic execution by the incompleteness of
// randomized/fuzzing approaches: "even a state-of-the-art fuzzing-based
// approach is still susceptible to miss corner case bugs". This module
// is that baseline: the SAME co-simulation testbench (RTL core + ISS +
// voter), but driven by concrete random stimuli — random instruction
// words (with a valid-encoding mutation bias, riscv-dv style), random
// register values and random memory content. Every value folds to a
// constant, so no solver is involved and throughput is high; the
// comparison bench measures tests-to-detection against the symbolic
// engine's time-to-detection.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <string>

#include "core/cosim.hpp"
#include "core/symmem.hpp"

namespace rvsym::fuzz {

struct FuzzOptions {
  std::uint64_t max_tests = 100000;  ///< 0 = unlimited
  double max_seconds = 30;           ///< 0 = unlimited
  std::uint32_t seed = 0xF022ED;
  /// Fraction (0..100) of tests whose instruction words are mutated from
  /// valid encodings instead of being uniformly random words.
  unsigned valid_bias_percent = 75;
  /// Bias register fields towards x0..x3 so the randomized register
  /// window actually gets exercised.
  bool small_reg_bias = true;
  /// Skip SYSTEM-opcode instructions (the Table II "RV32I only" setup).
  bool block_system = true;
  /// Number of randomized registers (mirrors num_symbolic_regs).
  unsigned num_random_regs = 2;
  unsigned instr_limit = 1;
};

struct FuzzReport {
  bool found = false;
  std::uint64_t tests = 0;         ///< co-simulation runs executed
  std::uint64_t instructions = 0;  ///< retired instruction pairs
  double seconds = 0;
  std::string mismatch_message;    ///< voter message of the detection
  std::uint32_t witness_instr = 0; ///< first instruction of the failing test
};

/// Deterministic pseudo-random initial memory image: byte (seed, addr).
class RandomImage final : public core::InitialImage {
 public:
  explicit RandomImage(std::uint32_t seed) : seed_(seed) {}
  expr::ExprRef byteAt(symex::ExecState& st, std::uint32_t addr) override;

 private:
  std::uint32_t seed_;
};

class CosimFuzzer {
 public:
  /// Runs random concrete co-simulations of `config` (bugs/faults taken
  /// from it; instruction constraints are ignored — the fuzzer generates
  /// its own stimuli) until a voter mismatch or the budget runs out.
  FuzzReport run(const core::CosimConfig& config, const FuzzOptions& options);

  /// One random instruction word under the generation policy.
  static std::uint32_t randomInstruction(std::uint64_t& rng_state,
                                         const FuzzOptions& options);

 private:
  /// xorshift64* PRNG step.
  static std::uint64_t next(std::uint64_t& s);
};

}  // namespace rvsym::fuzz
