#include "iss/csrfile.hpp"

namespace rvsym::iss {

using expr::ExprRef;
using namespace rv32::csr;

CsrConfig CsrConfig::riscvVp() {
  CsrConfig c;  // full CSR set, spec-correct defaults...
  c.trap_on_medeleg_read = true;   // ...except the two authentic VP bugs.
  c.trap_on_mideleg_read = true;
  c.cycle_counts_instructions = true;
  return c;
}

CsrConfig CsrConfig::microrv32() {
  CsrConfig c;
  c.has_unprivileged_counters = false;
  c.has_mhpm = false;
  c.has_mscratch = false;
  c.has_mcounteren = false;
  c.has_medeleg_mideleg = true;   // implemented, readable without trap
  c.trap_on_unimplemented = false;  // bug: missing illegal-instruction trap
  c.trap_on_readonly_write = false; // bug: missing trap at RO write
  c.trap_on_counter_write = true;   // bug: mip/mcycle/minstret/...h writes trap
  c.cycle_counts_instructions = false;  // real clock-cycle counting
  return c;
}

CsrConfig CsrConfig::specCorrect() { return CsrConfig{}; }

CsrFile::CsrFile(expr::ExprBuilder& eb, CsrConfig config)
    : eb_(eb), config_(config) {
  const ExprRef zero = eb_.constant(0, 32);
  mstatus_ = zero;
  mtvec_ = zero;
  mepc_ = zero;
  mcause_ = zero;
  mtval_ = zero;
  mie_ = zero;
  mip_ = zero;
  mscratch_ = zero;
  medeleg_ = zero;
  mideleg_ = zero;
  mcounteren_ = zero;
  cycle_ = eb_.constant(0, 64);
  instret_ = eb_.constant(0, 64);
}

ExprRef CsrFile::word(std::uint32_t v) const { return eb_.constant(v, 32); }

bool CsrFile::isImplemented(std::uint16_t addr) const {
  switch (addr) {
    case kMvendorid:
    case kMarchid:
    case kMimpid:
    case kMhartid:
    case kMstatus:
    case kMisa:
    case kMie:
    case kMtvec:
    case kMepc:
    case kMcause:
    case kMip:
    case kMcycle:
    case kMinstret:
    case kMcycleh:
    case kMinstreth:
      return true;
    case kMtval:
      return config_.has_mtval;
    case kMedeleg:
    case kMideleg:
      return config_.has_medeleg_mideleg;
    case kMscratch:
      return config_.has_mscratch;
    case kMcounteren:
      return config_.has_mcounteren;
    case kCycle:
    case kTime:
    case kInstret:
    case kCycleh:
    case kTimeh:
    case kInstreth:
      return config_.has_unprivileged_counters;
    default:
      if (isMhpmcounter(addr) || isMhpmcounterh(addr) || isMhpmevent(addr))
        return config_.has_mhpm;
      return false;
  }
}

std::uint16_t CsrFile::resolve(symex::ExecState& st, const ExprRef& addr) {
  expr::ExprBuilder& eb = st.builder();
  if (addr->isConstant()) {
    const auto a = static_cast<std::uint16_t>(addr->constantValue());
    return isImplemented(a) ? a : kUnimplemented;
  }

  static constexpr std::uint16_t kSingles[] = {
      kMstatus, kMisa,   kMie,     kMtvec,    kMepc,    kMcause,  kMip,
      kMtval,   kMedeleg, kMideleg, kMscratch, kMcounteren,
      kMvendorid, kMarchid, kMimpid, kMhartid,
      kMcycle,  kMinstret, kMcycleh, kMinstreth,
      kCycle,   kTime,    kInstret, kCycleh,   kTimeh,   kInstreth,
  };
  for (std::uint16_t a : kSingles) {
    if (!isImplemented(a)) continue;
    if (st.branch(eb.eqConst(addr, a))) return a;
  }
  if (config_.has_mhpm) {
    struct Range {
      std::uint16_t lo, hi;
    };
    static constexpr Range kRanges[] = {
        {kMhpmcounter3, 0xB1F}, {kMhpmcounter3h, 0xB9F}, {kMhpmevent3, 0x33F}};
    for (const Range& r : kRanges) {
      const ExprRef in_range =
          eb.boolAnd(eb.uge(addr, eb.constant(r.lo, 12)),
                     eb.ule(addr, eb.constant(r.hi, 12)));
      if (st.branch(in_range))
        return static_cast<std::uint16_t>(st.concretize(addr));
    }
  }
  return kUnimplemented;
}

CsrFile::ReadResult CsrFile::read(std::uint16_t addr) {
  if (addr == kUnimplemented) {
    if (config_.trap_on_unimplemented) return {true, nullptr};
    return {false, word(0)};  // MicroRV32: reads as zero, no trap
  }
  switch (addr) {
    case kMvendorid: return {false, word(config_.mvendorid)};
    case kMarchid: return {false, word(config_.marchid)};
    case kMimpid: return {false, word(config_.mimpid)};
    case kMhartid: return {false, word(config_.mhartid)};
    case kMstatus: return {false, mstatus_};
    case kMisa: return {false, word(config_.misa)};
    case kMie: return {false, mie_};
    case kMtvec: return {false, mtvec_};
    case kMepc: return {false, mepc_};
    case kMcause: return {false, mcause_};
    case kMtval: return {false, mtval_};
    case kMip: return {false, mip_};
    case kMedeleg:
      if (config_.trap_on_medeleg_read) return {true, nullptr};  // VP bug E*
      return {false, medeleg_};
    case kMideleg:
      if (config_.trap_on_mideleg_read) return {true, nullptr};  // VP bug E*
      return {false, mideleg_};
    case kMscratch: return {false, mscratch_};
    case kMcounteren: return {false, mcounteren_};
    case kMcycle:
    case kCycle:
    case kTime:
      return {false, eb_.extract(cycle_, 0, 32)};
    case kMcycleh:
    case kCycleh:
    case kTimeh:
      return {false, eb_.extract(cycle_, 32, 32)};
    case kMinstret:
    case kInstret:
      return {false, eb_.extract(instret_, 0, 32)};
    case kMinstreth:
    case kInstreth:
      return {false, eb_.extract(instret_, 32, 32)};
    default: {
      auto it = hpm_.find(addr);
      return {false, it == hpm_.end() ? word(0) : it->second};
    }
  }
}

bool CsrFile::write(std::uint16_t addr, const ExprRef& value) {
  if (addr == kUnimplemented) {
    if (config_.trap_on_unimplemented) return true;
    return false;  // MicroRV32: silently ignored
  }
  if (isReadOnlyAddress(addr)) {
    // mvendorid/marchid/mhartid/... and the unprivileged counter shadows.
    return config_.trap_on_readonly_write;
  }
  switch (addr) {
    case kMip:
    case kMcycle:
    case kMinstret:
    case kMcycleh:
    case kMinstreth:
      if (config_.trap_on_counter_write) return true;  // MicroRV32 bug
      break;
    default:
      break;
  }
  switch (addr) {
    case kMstatus: {
      // WARL: only MIE (bit 3) and MPIE (bit 7) are writable here; MPP is
      // hardwired to M (0b11 at bits 12:11).
      const ExprRef masked = eb_.andOp(value, word(0x88));
      mstatus_ = eb_.orOp(masked, word(0x3u << 11));
      return false;
    }
    case kMisa:
      return false;  // WARL, writes ignored
    case kMie:
      mie_ = value;
      return false;
    case kMtvec:
      // Direct mode only: low two bits are hardwired to zero.
      mtvec_ = eb_.andOp(value, word(~3u));
      return false;
    case kMepc:
      mepc_ = eb_.andOp(value, word(~3u));
      return false;
    case kMcause:
      mcause_ = value;
      return false;
    case kMtval:
      mtval_ = value;
      return false;
    case kMip:
      mip_ = value;
      return false;
    case kMedeleg:
      medeleg_ = value;
      return false;
    case kMideleg:
      mideleg_ = value;
      return false;
    case kMscratch:
      mscratch_ = value;
      return false;
    case kMcounteren:
      mcounteren_ = value;
      return false;
    case kMcycle:
      cycle_ = eb_.concat(eb_.extract(cycle_, 32, 32), value);
      return false;
    case kMcycleh:
      cycle_ = eb_.concat(value, eb_.extract(cycle_, 0, 32));
      return false;
    case kMinstret:
      instret_ = eb_.concat(eb_.extract(instret_, 32, 32), value);
      return false;
    case kMinstreth:
      instret_ = eb_.concat(value, eb_.extract(instret_, 0, 32));
      return false;
    default:
      if (isMhpmcounter(addr) || isMhpmcounterh(addr) || isMhpmevent(addr)) {
        hpm_[addr] = value;
        return false;
      }
      return false;
  }
}

void CsrFile::tickCycle() { cycle_ = eb_.add(cycle_, eb_.constant(1, 64)); }

void CsrFile::tickInstret() {
  instret_ = eb_.add(instret_, eb_.constant(1, 64));
}

void CsrFile::setInterruptLine(unsigned bit, bool level) {
  const std::uint32_t mask = 1u << bit;
  if (level)
    mip_ = eb_.orOp(mip_, word(mask));
  else
    mip_ = eb_.andOp(mip_, word(~mask));
}

ExprRef CsrFile::interruptRequest(unsigned bit) const {
  const std::uint32_t mask = 1u << bit;
  const ExprRef global = eb_.ne(eb_.andOp(mstatus_, word(0x8)), word(0));
  const ExprRef enabled = eb_.ne(eb_.andOp(mie_, word(mask)), word(0));
  const ExprRef pending = eb_.ne(eb_.andOp(mip_, word(mask)), word(0));
  return eb_.boolAnd(global, eb_.boolAnd(enabled, pending));
}

ExprRef CsrFile::enterTrap(const ExprRef& pc, std::uint32_t cause,
                           const ExprRef& tval) {
  mepc_ = eb_.andOp(pc, word(~3u));
  mcause_ = word(cause);
  if (config_.has_mtval) mtval_ = tval ? tval : word(0);
  // MPIE <- MIE; MIE <- 0; MPP stays M.
  const ExprRef mie_bit = eb_.andOp(mstatus_, word(0x8));
  const ExprRef mpie = eb_.shl(mie_bit, word(4));
  mstatus_ = eb_.orOp(eb_.andOp(mstatus_, word(~0x88u)),
                      eb_.orOp(mpie, word(0x3u << 11)));
  return mtvec_;
}

ExprRef CsrFile::doMret() {
  // MIE <- MPIE; MPIE <- 1.
  const ExprRef mpie_bit = eb_.andOp(mstatus_, word(0x80));
  const ExprRef mie = eb_.lshr(mpie_bit, word(4));
  mstatus_ = eb_.orOp(eb_.andOp(mstatus_, word(~0x88u)),
                      eb_.orOp(mie, word(0x80)));
  return mepc_;
}

}  // namespace rvsym::iss
