// The reference Instruction Set Simulator (RISC-V VP substitute).
//
// Instruction-accurate RV32I + Zicsr + machine-mode interpreter over
// symbolic words: it fetches through InstrSourceIf, decodes by walking
// the mask/match table with symbolic branches, executes with expression
// arithmetic, and accesses data through the paper's dedicated
// load-byte/half/word, store-byte/half/word binding (sign extension done
// here in the ISS, as §IV-C.2 describes).
//
// Authentic reference-model behaviours:
//  * misaligned loads/stores RAISE TRAPS (the VP checks alignment; the
//    RTL core supports misaligned accesses — Table I's M rows);
//  * the CSR file is CsrConfig::riscvVp() by default, including the two
//    real VP bugs on medeleg/mideleg reads (Table I's E* rows);
//  * WFI executes as a NOP, as the privileged spec permits;
//  * timing is abstract: mcycle advances once per retired instruction.
#pragma once

#include <cstdint>

#include "expr/builder.hpp"
#include "iss/csrfile.hpp"
#include "iss/mem_if.hpp"
#include "iss/retire.hpp"
#include "rv32/instr.hpp"
#include "rv32/regfile.hpp"
#include "symex/state.hpp"

namespace rvsym::iss {

struct IssConfig {
  CsrConfig csr = CsrConfig::riscvVp();
  /// Trap on misaligned data accesses (the VP behaviour). The
  /// RTL-compatible test configuration switches this off.
  bool trap_misaligned = true;
  /// Take machine interrupts (MEI/MSI/MTI by priority) before fetch.
  bool enable_interrupts = true;
  /// Raise an illegal-instruction trap on WFI instead of executing it as
  /// a NOP (for deriving configurations whose core leaves WFI out).
  bool trap_on_wfi = false;
  std::uint32_t reset_pc = 0x80000000;
};

class Iss {
 public:
  Iss(expr::ExprBuilder& eb, InstrSourceIf& isrc, DataMemoryIf& dmem,
      IssConfig config = {});

  /// Executes one instruction; returns its retirement record.
  RetireInfo step(symex::ExecState& st);

  // --- State access ------------------------------------------------------
  rv32::RegFile& regs() { return regs_; }
  const rv32::RegFile& regs() const { return regs_; }
  CsrFile& csrs() { return csrs_; }
  const expr::ExprRef& pc() const { return pc_; }
  void setPc(const expr::ExprRef& pc) { pc_ = pc; }
  const IssConfig& config() const { return config_; }

 private:
  /// Decodes by walking the pattern table with symbolic branches.
  rv32::Opcode decodeSymbolic(symex::ExecState& st, const expr::ExprRef& instr);

  /// Enters a machine trap; fills the retire record and advances the PC.
  void raiseTrap(RetireInfo& r, rv32::Cause cause, const expr::ExprRef& tval);

  expr::ExprBuilder& eb_;
  InstrSourceIf& isrc_;
  DataMemoryIf& dmem_;
  IssConfig config_;
  rv32::RegFile regs_;
  CsrFile csrs_;
  expr::ExprRef pc_;
};

}  // namespace rvsym::iss
