#include "iss/iss.hpp"

#include "rv32/fields.hpp"

namespace rvsym::iss {

using expr::ExprRef;
using rv32::Cause;
using rv32::Opcode;
using symex::ExecState;

namespace {

constexpr std::uint32_t causeCode(Cause c) {
  return static_cast<std::uint32_t>(c);
}

}  // namespace

Iss::Iss(expr::ExprBuilder& eb, InstrSourceIf& isrc, DataMemoryIf& dmem,
         IssConfig config)
    : eb_(eb),
      isrc_(isrc),
      dmem_(dmem),
      config_(config),
      regs_(eb),
      csrs_(eb, config.csr),
      pc_(eb.constant(config.reset_pc, 32)) {}

Opcode Iss::decodeSymbolic(ExecState& st, const ExprRef& instr) {
  for (const rv32::DecodePattern& p : rv32::decodeTable())
    if (st.branch(rv32::sym::matches(eb_, instr, p))) return p.op;
  return Opcode::Illegal;
}

void Iss::raiseTrap(RetireInfo& r, Cause cause, const ExprRef& tval) {
  r.trap = true;
  r.cause = causeCode(cause);
  r.rd_index = nullptr;
  r.rd_value = nullptr;
  r.mem_valid = false;
  r.next_pc = csrs_.enterTrap(r.pc, causeCode(cause), tval);
  pc_ = r.next_pc;
}

RetireInfo Iss::step(ExecState& st) {
  RetireInfo r;

  // Machine interrupts are taken between instructions, by priority
  // MEI > MSI > MTI; taking one redirects the fetch to the handler.
  if (config_.enable_interrupts) {
    static constexpr struct { unsigned bit; std::uint32_t cause; } kIrqs[] = {
        {11, 0x8000000Bu}, {3, 0x80000003u}, {7, 0x80000007u}};
    for (const auto& irq : kIrqs) {
      if (st.branch(csrs_.interruptRequest(irq.bit))) {
        pc_ = csrs_.enterTrap(pc_, irq.cause, eb_.constant(0, 32));
        break;
      }
    }
  }

  // Fetch: pin the PC to a concrete address so the shared symbolic
  // instruction memory serves the ISS and the RTL core identically.
  const auto fetch_addr = static_cast<std::uint32_t>(st.concretize(pc_));
  pc_ = eb_.constant(fetch_addr, 32);
  r.pc = pc_;
  r.instr = isrc_.fetch(st, fetch_addr);
  const ExprRef instr = r.instr;

  const ExprRef word4 = eb_.constant(4, 32);
  r.next_pc = eb_.add(pc_, word4);

  const Opcode op = decodeSymbolic(st, instr);

  const ExprRef rd_idx = rv32::sym::rd(eb_, instr);
  const ExprRef rs1_val = regs_.read(eb_, rv32::sym::rs1(eb_, instr));
  const ExprRef rs2_val = regs_.read(eb_, rv32::sym::rs2(eb_, instr));

  // Records the rd write in both the register file and the RVFI channel
  // (normalized to zero for x0, as RVFI requires).
  const auto writeRd = [&](const ExprRef& value) {
    regs_.write(eb_, rd_idx, value);
    r.rd_index = rd_idx;
    r.rd_value = eb_.ite(eb_.eqConst(rd_idx, 0), eb_.constant(0, 32), value);
  };

  // Forks on data-access misalignment when the VP-style check is active.
  const auto misaligned = [&](const ExprRef& addr, unsigned bytes) {
    if (!config_.trap_misaligned || bytes == 1) return false;
    return st.branch(
        eb_.ne(eb_.andOp(addr, eb_.constant(bytes - 1, 32)),
               eb_.constant(0, 32)));
  };

  // Checks a (possibly symbolic) control-transfer target for IALIGN=32.
  const auto fetchMisaligned = [&](const ExprRef& target) {
    return st.branch(eb_.ne(eb_.andOp(target, eb_.constant(3, 32)),
                            eb_.constant(0, 32)));
  };

  const auto finishCounters = [&](bool retired) {
    csrs_.tickCycle();  // abstract timing: one "cycle" per step
    if (retired) csrs_.tickInstret();
  };

  switch (op) {
    case Opcode::Lui:
      writeRd(rv32::sym::immU(eb_, instr));
      break;
    case Opcode::Auipc:
      writeRd(eb_.add(pc_, rv32::sym::immU(eb_, instr)));
      break;
    case Opcode::Jal: {
      const ExprRef target = eb_.add(pc_, rv32::sym::immJ(eb_, instr));
      if (fetchMisaligned(target)) {
        raiseTrap(r, Cause::MisalignedFetch, target);
        finishCounters(false);
        return r;
      }
      writeRd(eb_.add(pc_, word4));
      r.next_pc = target;
      break;
    }
    case Opcode::Jalr: {
      const ExprRef target =
          eb_.andOp(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)),
                    eb_.constant(~1u, 32));
      if (fetchMisaligned(target)) {
        raiseTrap(r, Cause::MisalignedFetch, target);
        finishCounters(false);
        return r;
      }
      writeRd(eb_.add(pc_, word4));
      r.next_pc = target;
      break;
    }
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu: {
      ExprRef cond;
      switch (op) {
        case Opcode::Beq: cond = eb_.eq(rs1_val, rs2_val); break;
        case Opcode::Bne: cond = eb_.ne(rs1_val, rs2_val); break;
        case Opcode::Blt: cond = eb_.slt(rs1_val, rs2_val); break;
        case Opcode::Bge: cond = eb_.sge(rs1_val, rs2_val); break;
        case Opcode::Bltu: cond = eb_.ult(rs1_val, rs2_val); break;
        default: cond = eb_.uge(rs1_val, rs2_val); break;
      }
      if (st.branch(cond)) {
        const ExprRef target = eb_.add(pc_, rv32::sym::immB(eb_, instr));
        if (fetchMisaligned(target)) {
          raiseTrap(r, Cause::MisalignedFetch, target);
          finishCounters(false);
          return r;
        }
        r.next_pc = target;
      }
      break;
    }
    case Opcode::Lb:
    case Opcode::Lh:
    case Opcode::Lw:
    case Opcode::Lbu:
    case Opcode::Lhu: {
      const ExprRef addr = eb_.add(rs1_val, rv32::sym::immI(eb_, instr));
      const unsigned bytes =
          op == Opcode::Lw ? 4 : (op == Opcode::Lh || op == Opcode::Lhu) ? 2 : 1;
      if (misaligned(addr, bytes)) {
        raiseTrap(r, Cause::MisalignedLoad, addr);
        finishCounters(false);
        return r;
      }
      ExprRef raw, value;
      switch (op) {
        case Opcode::Lb:
          raw = dmem_.loadByte(st, addr);
          value = eb_.sext(raw, 32);
          break;
        case Opcode::Lbu:
          raw = dmem_.loadByte(st, addr);
          value = eb_.zext(raw, 32);
          break;
        case Opcode::Lh:
          raw = dmem_.loadHalf(st, addr);
          value = eb_.sext(raw, 32);
          break;
        case Opcode::Lhu:
          raw = dmem_.loadHalf(st, addr);
          value = eb_.zext(raw, 32);
          break;
        default:
          raw = dmem_.loadWord(st, addr);
          value = raw;
          break;
      }
      writeRd(value);
      r.mem_valid = true;
      r.mem_is_store = false;
      r.mem_size = bytes;
      r.mem_addr = addr;
      r.mem_data = eb_.zext(raw, 32);
      break;
    }
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw: {
      const ExprRef addr = eb_.add(rs1_val, rv32::sym::immS(eb_, instr));
      const unsigned bytes = op == Opcode::Sw ? 4 : op == Opcode::Sh ? 2 : 1;
      if (misaligned(addr, bytes)) {
        raiseTrap(r, Cause::MisalignedStore, addr);
        finishCounters(false);
        return r;
      }
      const ExprRef data = eb_.extract(rs2_val, 0, bytes * 8);
      switch (op) {
        case Opcode::Sb: dmem_.storeByte(st, addr, data); break;
        case Opcode::Sh: dmem_.storeHalf(st, addr, data); break;
        default: dmem_.storeWord(st, addr, data); break;
      }
      r.mem_valid = true;
      r.mem_is_store = true;
      r.mem_size = bytes;
      r.mem_addr = addr;
      r.mem_data = eb_.zext(data, 32);
      break;
    }
    case Opcode::Addi:
      writeRd(eb_.add(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Slti:
      writeRd(eb_.zext(eb_.slt(rs1_val, rv32::sym::immI(eb_, instr)), 32));
      break;
    case Opcode::Sltiu:
      writeRd(eb_.zext(eb_.ult(rs1_val, rv32::sym::immI(eb_, instr)), 32));
      break;
    case Opcode::Xori:
      writeRd(eb_.xorOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Ori:
      writeRd(eb_.orOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Andi:
      writeRd(eb_.andOp(rs1_val, rv32::sym::immI(eb_, instr)));
      break;
    case Opcode::Slli:
      writeRd(eb_.shl(rs1_val, eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Srli:
      writeRd(eb_.lshr(rs1_val, eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Srai:
      writeRd(eb_.ashr(rs1_val, eb_.zext(rv32::sym::shamt(eb_, instr), 32)));
      break;
    case Opcode::Add:
      writeRd(eb_.add(rs1_val, rs2_val));
      break;
    case Opcode::Sub:
      writeRd(eb_.sub(rs1_val, rs2_val));
      break;
    case Opcode::Sll:
      writeRd(eb_.shl(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Slt:
      writeRd(eb_.zext(eb_.slt(rs1_val, rs2_val), 32));
      break;
    case Opcode::Sltu:
      writeRd(eb_.zext(eb_.ult(rs1_val, rs2_val), 32));
      break;
    case Opcode::Xor:
      writeRd(eb_.xorOp(rs1_val, rs2_val));
      break;
    case Opcode::Srl:
      writeRd(eb_.lshr(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Sra:
      writeRd(eb_.ashr(rs1_val, eb_.zext(eb_.extract(rs2_val, 0, 5), 32)));
      break;
    case Opcode::Or:
      writeRd(eb_.orOp(rs1_val, rs2_val));
      break;
    case Opcode::And:
      writeRd(eb_.andOp(rs1_val, rs2_val));
      break;
    case Opcode::Fence:
      break;  // no-op in this memory model
    case Opcode::Wfi:
      if (config_.trap_on_wfi) {
        raiseTrap(r, Cause::IllegalInstr, instr);
        finishCounters(false);
        return r;
      }
      break;  // the VP implements WFI; NOP semantics are spec-legal
    case Opcode::Ecall:
      raiseTrap(r, Cause::EcallFromM, eb_.constant(0, 32));
      finishCounters(false);
      return r;
    case Opcode::Ebreak:
      raiseTrap(r, Cause::Breakpoint, r.pc);
      finishCounters(false);
      return r;
    case Opcode::Mret:
      r.next_pc = csrs_.doMret();
      break;
    case Opcode::Csrrw:
    case Opcode::Csrrs:
    case Opcode::Csrrc:
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci: {
      const bool is_imm = op == Opcode::Csrrwi || op == Opcode::Csrrsi ||
                          op == Opcode::Csrrci;
      const bool is_rw = op == Opcode::Csrrw || op == Opcode::Csrrwi;
      const ExprRef src = is_imm ? rv32::sym::zimm(eb_, instr) : rs1_val;
      const ExprRef src_field = is_imm ? rv32::sym::zimm(eb_, instr)
                                       : eb_.zext(rv32::sym::rs1(eb_, instr), 32);

      const std::uint16_t addr =
          csrs_.resolve(st, rv32::sym::csrAddr(eb_, instr));

      // CSRRW with rd=x0 skips the read (and its side effects); CSRRS/C
      // with a zero source skips the write.
      const bool do_read =
          !is_rw || !st.branch(eb_.eqConst(rd_idx, 0));
      const bool do_write =
          is_rw || st.branch(eb_.ne(src_field, eb_.constant(0, 32)));

      ExprRef old = eb_.constant(0, 32);
      if (do_read) {
        const CsrFile::ReadResult rr = csrs_.read(addr);
        if (rr.trap) {
          raiseTrap(r, Cause::IllegalInstr, instr);
          finishCounters(false);
          return r;
        }
        old = rr.value;
      }
      if (do_write) {
        ExprRef new_value;
        if (is_rw)
          new_value = src;
        else if (op == Opcode::Csrrs || op == Opcode::Csrrsi)
          new_value = eb_.orOp(old, src);
        else
          new_value = eb_.andOp(old, eb_.notOp(src));
        if (csrs_.write(addr, new_value)) {
          raiseTrap(r, Cause::IllegalInstr, instr);
          finishCounters(false);
          return r;
        }
      }
      writeRd(old);
      break;
    }
    case Opcode::Illegal:
      raiseTrap(r, Cause::IllegalInstr, instr);
      finishCounters(false);
      return r;
  }

  finishCounters(true);
  pc_ = r.next_pc;
  return r;
}

}  // namespace rvsym::iss
