// RetireInfo — the RVFI-style retirement record both processor models
// produce for every executed instruction. The voter compares two of
// these (paper §IV-D: "the results contain values like the actual and
// old PC and the value of the target register of the executed
// instruction"), plus the memory-access channel RVFI also exposes.
#pragma once

#include "expr/expr.hpp"

namespace rvsym::iss {

struct RetireInfo {
  expr::ExprRef pc;       ///< PC of the retired instruction
  expr::ExprRef next_pc;  ///< PC after it
  expr::ExprRef instr;    ///< the instruction word

  bool trap = false;
  std::uint32_t cause = 0;  ///< mcause value when trap

  /// Destination register channel. rd_index is the 5-bit rd field (null
  /// when the instruction has no rd); rd_value is already normalized to
  /// zero when rd is x0, as RVFI requires.
  expr::ExprRef rd_index;
  expr::ExprRef rd_value;

  /// Memory-access channel.
  bool mem_valid = false;
  bool mem_is_store = false;
  unsigned mem_size = 0;   ///< access size in bytes (1, 2, 4)
  expr::ExprRef mem_addr;  ///< 32-bit effective address
  expr::ExprRef mem_data;  ///< stored data / loaded raw data, zext to 32
};

}  // namespace rvsym::iss
