// Memory interfaces between the processor models and the co-simulation's
// symbolic memories.
//
// The ISS binds to DataMemoryIf exactly as the paper describes the VP
// binding: dedicated load byte/half/word and store byte/half/word entry
// points, with sign/zero extension performed by the ISS itself.
// Instruction fetch goes through InstrSourceIf with a concrete address
// (the co-simulation concretizes the PC before fetching so that the ISS
// and the RTL core always receive the identical instruction word).
#pragma once

#include "expr/builder.hpp"
#include "symex/state.hpp"

namespace rvsym::iss {

class DataMemoryIf {
 public:
  virtual ~DataMemoryIf() = default;

  /// 8/16/32-bit loads; the returned expression has exactly that width.
  virtual expr::ExprRef loadByte(symex::ExecState& st,
                                 const expr::ExprRef& addr) = 0;
  virtual expr::ExprRef loadHalf(symex::ExecState& st,
                                 const expr::ExprRef& addr) = 0;
  virtual expr::ExprRef loadWord(symex::ExecState& st,
                                 const expr::ExprRef& addr) = 0;

  virtual void storeByte(symex::ExecState& st, const expr::ExprRef& addr,
                         const expr::ExprRef& value8) = 0;
  virtual void storeHalf(symex::ExecState& st, const expr::ExprRef& addr,
                         const expr::ExprRef& value16) = 0;
  virtual void storeWord(symex::ExecState& st, const expr::ExprRef& addr,
                         const expr::ExprRef& value32) = 0;
};

class InstrSourceIf {
 public:
  virtual ~InstrSourceIf() = default;

  /// Returns the 32-bit instruction at the concrete address `addr`.
  /// Repeated fetches of one address must return the identical
  /// expression (generate-once caching lives behind this interface).
  virtual expr::ExprRef fetch(symex::ExecState& st, std::uint32_t addr) = 0;
};

}  // namespace rvsym::iss
