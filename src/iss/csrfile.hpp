// Configurable machine-mode CSR file shared by the ISS and the RTL core
// model.
//
// One implementation serves both processors: CsrConfig selects which CSR
// groups exist and which (authentic) bugs are active. CsrConfig::riscvVp()
// reproduces the RISC-V VP reference ISS including its two real bugs
// (trap on medeleg/mideleg READ — the E* rows of Table I);
// CsrConfig::microrv32() reproduces the MicroRV32 RTL core including its
// CSR errors (missing illegal-instruction traps, trap-on-write for the
// writable counters, missing counters/mscratch/mcounteren);
// CsrConfig::specCorrect() is the fully compliant configuration used as
// the fixed DUT for the error-injection experiments (Table II).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "expr/builder.hpp"
#include "rv32/csr.hpp"
#include "symex/state.hpp"

namespace rvsym::iss {

struct CsrConfig {
  // --- Implemented CSR groups ----------------------------------------------
  bool has_unprivileged_counters = true;  ///< cycle/time/instret (+h)
  bool has_mhpm = true;                   ///< mhpmcounter3-31(+h), mhpmevent3-31
  bool has_mscratch = true;
  bool has_mcounteren = true;
  bool has_medeleg_mideleg = true;
  bool has_mtval = true;

  // --- Behaviours (defaults are specification-correct) ----------------------
  /// Authentic RISC-V VP bugs: trap on *read* of medeleg / mideleg (E*).
  bool trap_on_medeleg_read = false;
  bool trap_on_mideleg_read = false;
  /// Raise illegal-instruction on access to unimplemented CSRs
  /// (MicroRV32 bug: does not — "Missing trap at access").
  bool trap_on_unimplemented = true;
  /// Raise illegal-instruction on writes to read-only CSRs
  /// (MicroRV32 bug: does not — "Missing trap at write").
  bool trap_on_readonly_write = true;
  /// MicroRV32 bug: writes to mip/mcycle/minstret/mcycleh/minstreth trap.
  bool trap_on_counter_write = false;
  /// Abstract ISS timing: mcycle advances once per retired instruction.
  /// The RTL core advances it once per clock tick (several per
  /// instruction), which yields the paper's "Cycle Count Mismatch".
  bool cycle_counts_instructions = true;

  // --- Identification values -------------------------------------------------
  std::uint32_t mvendorid = 0;
  std::uint32_t marchid = 0;
  std::uint32_t mimpid = 0;
  std::uint32_t mhartid = 0;
  std::uint32_t misa = (1u << 30) | (1u << 8);  // RV32 + I

  static CsrConfig riscvVp();
  static CsrConfig microrv32();
  static CsrConfig specCorrect();
};

class CsrFile {
 public:
  /// Marker returned by resolve() for addresses outside the implemented set.
  static constexpr std::uint16_t kUnimplemented = 0xFFFF;

  CsrFile(expr::ExprBuilder& eb, CsrConfig config);

  const CsrConfig& config() const { return config_; }

  /// Maps a (possibly symbolic) 12-bit CSR address expression onto a
  /// concrete implemented address or kUnimplemented, forking the path as
  /// needed. Ranged CSRs (mhpmcounter*, mhpmevent*) fork once per range
  /// and concretize inside it.
  std::uint16_t resolve(symex::ExecState& st, const expr::ExprRef& addr);

  struct ReadResult {
    bool trap = false;
    expr::ExprRef value;  // valid iff !trap
  };
  /// Reads a resolved address. May trap per configuration.
  ReadResult read(std::uint16_t addr);

  /// Writes a resolved address. Returns true if the access traps.
  bool write(std::uint16_t addr, const expr::ExprRef& value);

  /// Is `addr` inside this configuration's implemented set?
  bool isImplemented(std::uint16_t addr) const;

  // --- Counters --------------------------------------------------------------
  void tickCycle();     ///< advance mcycle by one (64-bit)
  void tickInstret();   ///< advance minstret by one (64-bit)
  const expr::ExprRef& cycle64() const { return cycle_; }
  const expr::ExprRef& instret64() const { return instret_; }

  // --- Interrupts ---------------------------------------------------------------
  /// Asserts/deasserts an interrupt line (mip bit) from the testbench.
  void setInterruptLine(unsigned bit, bool level);
  /// Width-1 condition: interrupt `bit` is pending, enabled in mie, and
  /// globally enabled (mstatus.MIE).
  expr::ExprRef interruptRequest(unsigned bit) const;

  // --- Trap entry / return -----------------------------------------------------
  /// Performs the machine-trap state update (mepc/mcause/mtval/mstatus)
  /// and returns the trap target PC (mtvec base).
  expr::ExprRef enterTrap(const expr::ExprRef& pc, std::uint32_t cause,
                          const expr::ExprRef& tval);
  /// MRET: restores mstatus and returns the resume PC (mepc).
  expr::ExprRef doMret();

  // Direct state access for tests and reset conventions.
  const expr::ExprRef& mtvec() const { return mtvec_; }
  const expr::ExprRef& mepc() const { return mepc_; }
  const expr::ExprRef& mcause() const { return mcause_; }
  void setMtvec(const expr::ExprRef& v) { mtvec_ = v; }

 private:
  expr::ExprRef word(std::uint32_t v) const;

  expr::ExprBuilder& eb_;
  CsrConfig config_;

  // Trap/state CSRs (symbolic-capable storage).
  expr::ExprRef mstatus_;
  expr::ExprRef mtvec_;
  expr::ExprRef mepc_;
  expr::ExprRef mcause_;
  expr::ExprRef mtval_;
  expr::ExprRef mie_;
  expr::ExprRef mip_;
  expr::ExprRef mscratch_;
  expr::ExprRef medeleg_;
  expr::ExprRef mideleg_;
  expr::ExprRef mcounteren_;

  // 64-bit counters; ticks fold to constants until an explicit CSR write
  // stores a symbolic value.
  expr::ExprRef cycle_;
  expr::ExprRef instret_;

  // mhpmcounter3-31 (+h) and mhpmevent3-31 storage, keyed by address.
  std::unordered_map<std::uint16_t, expr::ExprRef> hpm_;
};

}  // namespace rvsym::iss
