// Mux-based register file over symbolic words.
//
// Reads and writes with a symbolic 5-bit index are lowered to ite chains
// (exactly the mux structure of a hardware register file), so a symbolic
// register index does not fork the path. x0 reads as zero and ignores
// writes. For concrete indices everything folds to a direct access.
//
// Note: KLEE applied to an array-indexed software register file would
// fork over the index instead; the mux lowering explores the same
// behaviours in a single path and is how the verilated RTL code looks
// anyway. This reduces absolute path counts relative to the paper
// without changing which mismatches are reachable (see DESIGN.md).
#pragma once

#include <array>
#include <cassert>

#include "expr/builder.hpp"

namespace rvsym::rv32 {

class RegFile {
 public:
  /// Initializes every register (including x0) to constant zero.
  explicit RegFile(expr::ExprBuilder& eb) {
    regs_.fill(eb.constant(0, 32));
  }

  /// Direct access for concrete indices.
  const expr::ExprRef& get(unsigned index) const { return regs_[index]; }
  void set(expr::ExprBuilder& eb, unsigned index, expr::ExprRef value) {
    assert(index < 32);
    if (index == 0) {
      regs_[0] = eb.constant(0, 32);
      return;
    }
    regs_[index] = std::move(value);
  }

  /// Read with a (possibly symbolic) 5-bit index.
  expr::ExprRef read(expr::ExprBuilder& eb, const expr::ExprRef& index) const {
    assert(index->width() == 5);
    if (index->isConstant()) return regs_[index->constantValue()];
    expr::ExprRef acc = regs_[31];
    for (int i = 30; i >= 0; --i)
      acc = eb.ite(eb.eqConst(index, static_cast<std::uint64_t>(i)),
                   regs_[static_cast<std::size_t>(i)], acc);
    return acc;
  }

  /// Write with a (possibly symbolic) 5-bit index; x0 is untouched.
  void write(expr::ExprBuilder& eb, const expr::ExprRef& index,
             const expr::ExprRef& value) {
    assert(index->width() == 5);
    if (index->isConstant()) {
      set(eb, static_cast<unsigned>(index->constantValue()), value);
      return;
    }
    for (unsigned i = 1; i < 32; ++i)
      regs_[i] = eb.ite(eb.eqConst(index, i), value, regs_[i]);
  }

 private:
  std::array<expr::ExprRef, 32> regs_;
};

}  // namespace rvsym::rv32
