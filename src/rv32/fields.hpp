// Symbolic instruction-field extraction, shared by the ISS and the RTL
// core model. All helpers take the 32-bit instruction expression and
// return field expressions; immediates are returned sign-extended to 32
// bits exactly as the ISA specifies per format.
#pragma once

#include "expr/builder.hpp"
#include "rv32/instr.hpp"

namespace rvsym::rv32::sym {

using expr::ExprBuilder;
using expr::ExprRef;

inline ExprRef opcode(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 0, 7); }
inline ExprRef rd(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 7, 5); }
inline ExprRef funct3(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 12, 3); }
inline ExprRef rs1(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 15, 5); }
inline ExprRef rs2(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 20, 5); }
inline ExprRef funct7(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 25, 7); }
inline ExprRef shamt(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 20, 5); }
inline ExprRef csrAddr(ExprBuilder& eb, const ExprRef& i) { return eb.extract(i, 20, 12); }
/// rs1 field reused as a zero-extended immediate by CSR*I.
inline ExprRef zimm(ExprBuilder& eb, const ExprRef& i) {
  return eb.zext(eb.extract(i, 15, 5), 32);
}

inline ExprRef immI(ExprBuilder& eb, const ExprRef& i) {
  return eb.sext(eb.extract(i, 20, 12), 32);
}

inline ExprRef immS(ExprBuilder& eb, const ExprRef& i) {
  return eb.sext(eb.concat(eb.extract(i, 25, 7), eb.extract(i, 7, 5)), 32);
}

inline ExprRef immB(ExprBuilder& eb, const ExprRef& i) {
  // imm[12|10:5|4:1|11] scattered over bits 31|30:25|11:8|7; bit 0 is 0.
  ExprRef hi = eb.concat(eb.extract(i, 31, 1), eb.extract(i, 7, 1));
  ExprRef mid = eb.concat(eb.extract(i, 25, 6), eb.extract(i, 8, 4));
  ExprRef all = eb.concat(hi, eb.concat(mid, eb.constant(0, 1)));
  return eb.sext(all, 32);
}

inline ExprRef immU(ExprBuilder& eb, const ExprRef& i) {
  return eb.concat(eb.extract(i, 12, 20), eb.constant(0, 12));
}

inline ExprRef immJ(ExprBuilder& eb, const ExprRef& i) {
  // imm[20|10:1|11|19:12] over bits 31|30:21|20|19:12; bit 0 is 0.
  ExprRef hi = eb.concat(eb.extract(i, 31, 1), eb.extract(i, 12, 8));
  ExprRef mid = eb.concat(eb.extract(i, 20, 1), eb.extract(i, 21, 10));
  ExprRef all = eb.concat(hi, eb.concat(mid, eb.constant(0, 1)));
  return eb.sext(all, 32);
}

/// `instr & mask == match` as a width-1 expression.
inline ExprRef matches(ExprBuilder& eb, const ExprRef& i,
                       const DecodePattern& p) {
  return eb.eq(eb.andOp(i, eb.constant(p.mask, 32)),
               eb.constant(p.match, 32));
}

}  // namespace rvsym::rv32::sym
