#include <cstdio>
#include "rv32/csr.hpp"

namespace rvsym::rv32 {

const char* csrName(std::uint16_t addr) {
  using namespace csr;
  switch (addr) {
    case kMvendorid: return "mvendorid";
    case kMarchid: return "marchid";
    case kMimpid: return "mimpid";
    case kMhartid: return "mhartid";
    case kMstatus: return "mstatus";
    case kMisa: return "misa";
    case kMedeleg: return "medeleg";
    case kMideleg: return "mideleg";
    case kMie: return "mie";
    case kMtvec: return "mtvec";
    case kMcounteren: return "mcounteren";
    case kMscratch: return "mscratch";
    case kMepc: return "mepc";
    case kMcause: return "mcause";
    case kMtval: return "mtval";
    case kMip: return "mip";
    case kMcycle: return "mcycle";
    case kMinstret: return "minstret";
    case kMcycleh: return "mcycleh";
    case kMinstreth: return "minstreth";
    case kCycle: return "cycle";
    case kTime: return "time";
    case kInstret: return "instret";
    case kCycleh: return "cycleh";
    case kTimeh: return "timeh";
    case kInstreth: return "instreth";
    default:
      break;
  }
  static thread_local char buf[20];
  if (csr::isMhpmcounter(addr)) {
    std::snprintf(buf, sizeof buf, "mhpmcounter%u", addr - 0xB00);
    return buf;
  }
  if (csr::isMhpmcounterh(addr)) {
    std::snprintf(buf, sizeof buf, "mhpmcounter%uh", addr - 0xB80);
    return buf;
  }
  if (csr::isMhpmevent(addr)) {
    std::snprintf(buf, sizeof buf, "mhpmevent%u", addr - 0x320);
    return buf;
  }
  return nullptr;
}

}  // namespace rvsym::rv32
