// Control and Status Register address map (machine mode + unprivileged
// counters) for RV32, covering every CSR named in the paper's Table I.
#pragma once

#include <cstdint>

namespace rvsym::rv32 {

namespace csr {

// Machine information (read-only).
constexpr std::uint16_t kMvendorid = 0xF11;
constexpr std::uint16_t kMarchid = 0xF12;
constexpr std::uint16_t kMimpid = 0xF13;
constexpr std::uint16_t kMhartid = 0xF14;

// Machine trap setup.
constexpr std::uint16_t kMstatus = 0x300;
constexpr std::uint16_t kMisa = 0x301;
constexpr std::uint16_t kMedeleg = 0x302;
constexpr std::uint16_t kMideleg = 0x303;
constexpr std::uint16_t kMie = 0x304;
constexpr std::uint16_t kMtvec = 0x305;
constexpr std::uint16_t kMcounteren = 0x306;

// Machine trap handling.
constexpr std::uint16_t kMscratch = 0x340;
constexpr std::uint16_t kMepc = 0x341;
constexpr std::uint16_t kMcause = 0x342;
constexpr std::uint16_t kMtval = 0x343;
constexpr std::uint16_t kMip = 0x344;

// Machine counters.
constexpr std::uint16_t kMcycle = 0xB00;
constexpr std::uint16_t kMinstret = 0xB02;
constexpr std::uint16_t kMhpmcounter3 = 0xB03;   // ..0xB1F (3..31)
constexpr std::uint16_t kMcycleh = 0xB80;
constexpr std::uint16_t kMinstreth = 0xB82;
constexpr std::uint16_t kMhpmcounter3h = 0xB83;  // ..0xB9F

// Machine counter setup.
constexpr std::uint16_t kMhpmevent3 = 0x323;     // ..0x33F

// Unprivileged counters (read-only shadows).
constexpr std::uint16_t kCycle = 0xC00;
constexpr std::uint16_t kTime = 0xC01;
constexpr std::uint16_t kInstret = 0xC02;
constexpr std::uint16_t kCycleh = 0xC80;
constexpr std::uint16_t kTimeh = 0xC81;
constexpr std::uint16_t kInstreth = 0xC82;

/// CSRs whose top two address bits are 11 are architecturally read-only;
/// a write access must raise an illegal-instruction exception.
constexpr bool isReadOnlyAddress(std::uint16_t addr) {
  return (addr >> 10) == 0x3;
}

/// Minimum privilege level encoded in bits [9:8] (0=U .. 3=M).
constexpr unsigned minPrivilege(std::uint16_t addr) {
  return (addr >> 8) & 0x3;
}

constexpr bool isMhpmcounter(std::uint16_t addr) {
  return addr >= kMhpmcounter3 && addr <= 0xB1F;
}
constexpr bool isMhpmcounterh(std::uint16_t addr) {
  return addr >= kMhpmcounter3h && addr <= 0xB9F;
}
constexpr bool isMhpmevent(std::uint16_t addr) {
  return addr >= kMhpmevent3 && addr <= 0x33F;
}
constexpr bool isUnprivilegedCounter(std::uint16_t addr) {
  switch (addr) {
    case kCycle:
    case kTime:
    case kInstret:
    case kCycleh:
    case kTimeh:
    case kInstreth:
      return true;
    default:
      return false;
  }
}

}  // namespace csr

/// CSR name for diagnostics; nullptr for addresses outside the map.
const char* csrName(std::uint16_t addr);

}  // namespace rvsym::rv32
