// Instruction encoders (a tiny assembler) for tests, examples and
// workload generators. All functions return the 32-bit instruction word.
//
// Immediates are taken as signed 32-bit values and truncated to the
// format's field width, matching assembler semantics for in-range values.
#pragma once

#include <cstdint>

namespace rvsym::rv32::enc {

using u32 = std::uint32_t;

constexpr u32 rType(u32 funct7, u32 rs2, u32 rs1, u32 funct3, u32 rd,
                    u32 opcode) {
  return (funct7 << 25) | ((rs2 & 31) << 20) | ((rs1 & 31) << 15) |
         (funct3 << 12) | ((rd & 31) << 7) | opcode;
}

constexpr u32 iType(std::int32_t imm, u32 rs1, u32 funct3, u32 rd,
                    u32 opcode) {
  return (static_cast<u32>(imm & 0xFFF) << 20) | ((rs1 & 31) << 15) |
         (funct3 << 12) | ((rd & 31) << 7) | opcode;
}

constexpr u32 sType(std::int32_t imm, u32 rs2, u32 rs1, u32 funct3,
                    u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 5) & 0x7F) << 25) | ((rs2 & 31) << 20) |
         ((rs1 & 31) << 15) | (funct3 << 12) | ((u & 0x1F) << 7) | opcode;
}

constexpr u32 bType(std::int32_t imm, u32 rs2, u32 rs1, u32 funct3,
                    u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3F) << 25) |
         ((rs2 & 31) << 20) | ((rs1 & 31) << 15) | (funct3 << 12) |
         (((u >> 1) & 0xF) << 8) | (((u >> 11) & 1) << 7) | opcode;
}

constexpr u32 uType(std::int32_t imm, u32 rd, u32 opcode) {
  return (static_cast<u32>(imm) & 0xFFFFF000u) | ((rd & 31) << 7) | opcode;
}

constexpr u32 jType(std::int32_t imm, u32 rd, u32 opcode) {
  const u32 u = static_cast<u32>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3FF) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xFF) << 12) |
         ((rd & 31) << 7) | opcode;
}

// --- RV32I -------------------------------------------------------------------

constexpr u32 lui(u32 rd, std::int32_t imm) { return uType(imm, rd, 0x37); }
constexpr u32 auipc(u32 rd, std::int32_t imm) { return uType(imm, rd, 0x17); }
constexpr u32 jal(u32 rd, std::int32_t off) { return jType(off, rd, 0x6F); }
constexpr u32 jalr(u32 rd, u32 rs1, std::int32_t off) {
  return iType(off, rs1, 0, rd, 0x67);
}

constexpr u32 beq(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 0, 0x63); }
constexpr u32 bne(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 1, 0x63); }
constexpr u32 blt(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 4, 0x63); }
constexpr u32 bge(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 5, 0x63); }
constexpr u32 bltu(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 6, 0x63); }
constexpr u32 bgeu(u32 rs1, u32 rs2, std::int32_t off) { return bType(off, rs2, rs1, 7, 0x63); }

constexpr u32 lb(u32 rd, u32 rs1, std::int32_t off) { return iType(off, rs1, 0, rd, 0x03); }
constexpr u32 lh(u32 rd, u32 rs1, std::int32_t off) { return iType(off, rs1, 1, rd, 0x03); }
constexpr u32 lw(u32 rd, u32 rs1, std::int32_t off) { return iType(off, rs1, 2, rd, 0x03); }
constexpr u32 lbu(u32 rd, u32 rs1, std::int32_t off) { return iType(off, rs1, 4, rd, 0x03); }
constexpr u32 lhu(u32 rd, u32 rs1, std::int32_t off) { return iType(off, rs1, 5, rd, 0x03); }

constexpr u32 sb(u32 rs2, u32 rs1, std::int32_t off) { return sType(off, rs2, rs1, 0, 0x23); }
constexpr u32 sh(u32 rs2, u32 rs1, std::int32_t off) { return sType(off, rs2, rs1, 1, 0x23); }
constexpr u32 sw(u32 rs2, u32 rs1, std::int32_t off) { return sType(off, rs2, rs1, 2, 0x23); }

constexpr u32 addi(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 0, rd, 0x13); }
constexpr u32 slti(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 2, rd, 0x13); }
constexpr u32 sltiu(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 3, rd, 0x13); }
constexpr u32 xori(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 4, rd, 0x13); }
constexpr u32 ori(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 6, rd, 0x13); }
constexpr u32 andi(u32 rd, u32 rs1, std::int32_t imm) { return iType(imm, rs1, 7, rd, 0x13); }

constexpr u32 slli(u32 rd, u32 rs1, u32 shamt) { return rType(0x00, shamt, rs1, 1, rd, 0x13); }
constexpr u32 srli(u32 rd, u32 rs1, u32 shamt) { return rType(0x00, shamt, rs1, 5, rd, 0x13); }
constexpr u32 srai(u32 rd, u32 rs1, u32 shamt) { return rType(0x20, shamt, rs1, 5, rd, 0x13); }

constexpr u32 add(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 0, rd, 0x33); }
constexpr u32 sub(u32 rd, u32 rs1, u32 rs2) { return rType(0x20, rs2, rs1, 0, rd, 0x33); }
constexpr u32 sll(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 1, rd, 0x33); }
constexpr u32 slt(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 2, rd, 0x33); }
constexpr u32 sltu(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 3, rd, 0x33); }
constexpr u32 xor_(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 4, rd, 0x33); }
constexpr u32 srl(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 5, rd, 0x33); }
constexpr u32 sra(u32 rd, u32 rs1, u32 rs2) { return rType(0x20, rs2, rs1, 5, rd, 0x33); }
constexpr u32 or_(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 6, rd, 0x33); }
constexpr u32 and_(u32 rd, u32 rs1, u32 rs2) { return rType(0x00, rs2, rs1, 7, rd, 0x33); }

constexpr u32 fence() { return 0x0000000F; }
constexpr u32 ecall() { return 0x00000073; }
constexpr u32 ebreak() { return 0x00100073; }
constexpr u32 mret() { return 0x30200073; }
constexpr u32 wfi() { return 0x10500073; }
constexpr u32 nop() { return addi(0, 0, 0); }

// --- Zicsr ---------------------------------------------------------------------

constexpr u32 csrrw(u32 rd, u32 csr, u32 rs1) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, rs1, 1, rd, 0x73); }
constexpr u32 csrrs(u32 rd, u32 csr, u32 rs1) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, rs1, 2, rd, 0x73); }
constexpr u32 csrrc(u32 rd, u32 csr, u32 rs1) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, rs1, 3, rd, 0x73); }
constexpr u32 csrrwi(u32 rd, u32 csr, u32 zimm) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, zimm, 5, rd, 0x73); }
constexpr u32 csrrsi(u32 rd, u32 csr, u32 zimm) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, zimm, 6, rd, 0x73); }
constexpr u32 csrrci(u32 rd, u32 csr, u32 zimm) { return iType(static_cast<std::int32_t>(csr << 20) >> 20, zimm, 7, rd, 0x73); }

}  // namespace rvsym::rv32::enc
