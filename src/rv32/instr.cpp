#include "rv32/instr.hpp"

#include <array>
#include <sstream>

#include "rv32/csr.hpp"

namespace rvsym::rv32 {

namespace {

constexpr std::uint32_t kOpcodeMask = 0x0000007F;
constexpr std::uint32_t kF3Mask = 0x0000707F;       // opcode + funct3
constexpr std::uint32_t kF7F3Mask = 0xFE00707F;     // opcode + funct3 + funct7
constexpr std::uint32_t kFullMask = 0xFFFFFFFF;

constexpr std::uint32_t f3(std::uint32_t op, std::uint32_t funct3) {
  return op | (funct3 << 12);
}
constexpr std::uint32_t f7(std::uint32_t op, std::uint32_t funct3,
                           std::uint32_t funct7) {
  return op | (funct3 << 12) | (funct7 << 25);
}

// Order is irrelevant: patterns are pairwise disjoint.
constexpr std::array<DecodePattern, 47> kDecodeTable{{
    {Opcode::Lui, kOpcodeMask, 0x37},
    {Opcode::Auipc, kOpcodeMask, 0x17},
    {Opcode::Jal, kOpcodeMask, 0x6F},
    {Opcode::Jalr, kF3Mask, f3(0x67, 0)},
    {Opcode::Beq, kF3Mask, f3(0x63, 0)},
    {Opcode::Bne, kF3Mask, f3(0x63, 1)},
    {Opcode::Blt, kF3Mask, f3(0x63, 4)},
    {Opcode::Bge, kF3Mask, f3(0x63, 5)},
    {Opcode::Bltu, kF3Mask, f3(0x63, 6)},
    {Opcode::Bgeu, kF3Mask, f3(0x63, 7)},
    {Opcode::Lb, kF3Mask, f3(0x03, 0)},
    {Opcode::Lh, kF3Mask, f3(0x03, 1)},
    {Opcode::Lw, kF3Mask, f3(0x03, 2)},
    {Opcode::Lbu, kF3Mask, f3(0x03, 4)},
    {Opcode::Lhu, kF3Mask, f3(0x03, 5)},
    {Opcode::Sb, kF3Mask, f3(0x23, 0)},
    {Opcode::Sh, kF3Mask, f3(0x23, 1)},
    {Opcode::Sw, kF3Mask, f3(0x23, 2)},
    {Opcode::Addi, kF3Mask, f3(0x13, 0)},
    {Opcode::Slti, kF3Mask, f3(0x13, 2)},
    {Opcode::Sltiu, kF3Mask, f3(0x13, 3)},
    {Opcode::Xori, kF3Mask, f3(0x13, 4)},
    {Opcode::Ori, kF3Mask, f3(0x13, 6)},
    {Opcode::Andi, kF3Mask, f3(0x13, 7)},
    {Opcode::Slli, kF7F3Mask, f7(0x13, 1, 0x00)},
    {Opcode::Srli, kF7F3Mask, f7(0x13, 5, 0x00)},
    {Opcode::Srai, kF7F3Mask, f7(0x13, 5, 0x20)},
    {Opcode::Add, kF7F3Mask, f7(0x33, 0, 0x00)},
    {Opcode::Sub, kF7F3Mask, f7(0x33, 0, 0x20)},
    {Opcode::Sll, kF7F3Mask, f7(0x33, 1, 0x00)},
    {Opcode::Slt, kF7F3Mask, f7(0x33, 2, 0x00)},
    {Opcode::Sltu, kF7F3Mask, f7(0x33, 3, 0x00)},
    {Opcode::Xor, kF7F3Mask, f7(0x33, 4, 0x00)},
    {Opcode::Srl, kF7F3Mask, f7(0x33, 5, 0x00)},
    {Opcode::Sra, kF7F3Mask, f7(0x33, 5, 0x20)},
    {Opcode::Or, kF7F3Mask, f7(0x33, 6, 0x00)},
    {Opcode::And, kF7F3Mask, f7(0x33, 7, 0x00)},
    {Opcode::Fence, kF3Mask, f3(0x0F, 0)},
    {Opcode::Ecall, kFullMask, 0x00000073},
    {Opcode::Ebreak, kFullMask, 0x00100073},
    {Opcode::Mret, kFullMask, 0x30200073},
    {Opcode::Wfi, kFullMask, 0x10500073},
    {Opcode::Csrrw, kF3Mask, f3(0x73, 1)},
    {Opcode::Csrrs, kF3Mask, f3(0x73, 2)},
    {Opcode::Csrrc, kF3Mask, f3(0x73, 3)},
    {Opcode::Csrrwi, kF3Mask, f3(0x73, 5)},
    {Opcode::Csrrsi, kF3Mask, f3(0x73, 6)},
    // Csrrci handled below: f3(0x73, 7).
}};

// Csrrci shares the table shape; kept separate so the array size above
// stays in sync with the initializer count.
constexpr DecodePattern kCsrrci{Opcode::Csrrci, kF3Mask, f3(0x73, 7)};

// The decode table and the Opcode enum describe the same legal
// instruction set; a row added to one without the other is a bug every
// coverage denominator would silently inherit.
static_assert(kDecodeTable.size() + 1 == kLegalOpcodeCount,
              "decode table out of sync with rv32::Opcode");

std::array<DecodePattern, kLegalOpcodeCount> buildFullTable() {
  std::array<DecodePattern, kLegalOpcodeCount> t{};
  for (std::size_t i = 0; i < kDecodeTable.size(); ++i) t[i] = kDecodeTable[i];
  t[kDecodeTable.size()] = kCsrrci;
  return t;
}

const std::array<DecodePattern, kLegalOpcodeCount>& fullTable() {
  static const std::array<DecodePattern, kLegalOpcodeCount> table =
      buildFullTable();
  return table;
}

}  // namespace

std::span<const DecodePattern> decodeTable() { return fullTable(); }

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::Illegal: return "illegal";
    case Opcode::Lui: return "lui";
    case Opcode::Auipc: return "auipc";
    case Opcode::Jal: return "jal";
    case Opcode::Jalr: return "jalr";
    case Opcode::Beq: return "beq";
    case Opcode::Bne: return "bne";
    case Opcode::Blt: return "blt";
    case Opcode::Bge: return "bge";
    case Opcode::Bltu: return "bltu";
    case Opcode::Bgeu: return "bgeu";
    case Opcode::Lb: return "lb";
    case Opcode::Lh: return "lh";
    case Opcode::Lw: return "lw";
    case Opcode::Lbu: return "lbu";
    case Opcode::Lhu: return "lhu";
    case Opcode::Sb: return "sb";
    case Opcode::Sh: return "sh";
    case Opcode::Sw: return "sw";
    case Opcode::Addi: return "addi";
    case Opcode::Slti: return "slti";
    case Opcode::Sltiu: return "sltiu";
    case Opcode::Xori: return "xori";
    case Opcode::Ori: return "ori";
    case Opcode::Andi: return "andi";
    case Opcode::Slli: return "slli";
    case Opcode::Srli: return "srli";
    case Opcode::Srai: return "srai";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Sll: return "sll";
    case Opcode::Slt: return "slt";
    case Opcode::Sltu: return "sltu";
    case Opcode::Xor: return "xor";
    case Opcode::Srl: return "srl";
    case Opcode::Sra: return "sra";
    case Opcode::Or: return "or";
    case Opcode::And: return "and";
    case Opcode::Fence: return "fence";
    case Opcode::Ecall: return "ecall";
    case Opcode::Ebreak: return "ebreak";
    case Opcode::Csrrw: return "csrrw";
    case Opcode::Csrrs: return "csrrs";
    case Opcode::Csrrc: return "csrrc";
    case Opcode::Csrrwi: return "csrrwi";
    case Opcode::Csrrsi: return "csrrsi";
    case Opcode::Csrrci: return "csrrci";
    case Opcode::Mret: return "mret";
    case Opcode::Wfi: return "wfi";
  }
  return "?";
}

const char* opcodeClass(Opcode op) {
  switch (op) {
    case Opcode::Illegal: return "illegal";
    case Opcode::Lui:
    case Opcode::Auipc: return "alu";
    case Opcode::Jal:
    case Opcode::Jalr: return "jump";
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu: return "branch";
    case Opcode::Lb:
    case Opcode::Lh:
    case Opcode::Lw:
    case Opcode::Lbu:
    case Opcode::Lhu: return "load";
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw: return "store";
    case Opcode::Addi:
    case Opcode::Slti:
    case Opcode::Sltiu:
    case Opcode::Xori:
    case Opcode::Ori:
    case Opcode::Andi:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Slt:
    case Opcode::Sltu:
    case Opcode::Xor:
    case Opcode::Or:
    case Opcode::And: return "alu";
    case Opcode::Slli:
    case Opcode::Srli:
    case Opcode::Srai:
    case Opcode::Sll:
    case Opcode::Srl:
    case Opcode::Sra: return "shift";
    case Opcode::Fence: return "fence";
    case Opcode::Ecall:
    case Opcode::Ebreak:
    case Opcode::Mret:
    case Opcode::Wfi: return "system";
    case Opcode::Csrrw:
    case Opcode::Csrrs:
    case Opcode::Csrrc:
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci: return "csr";
  }
  return "?";
}

bool isCsrOp(Opcode op) {
  switch (op) {
    case Opcode::Csrrw:
    case Opcode::Csrrs:
    case Opcode::Csrrc:
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci:
      return true;
    default:
      return false;
  }
}

bool isLoad(Opcode op) {
  switch (op) {
    case Opcode::Lb:
    case Opcode::Lh:
    case Opcode::Lw:
    case Opcode::Lbu:
    case Opcode::Lhu:
      return true;
    default:
      return false;
  }
}

bool isStore(Opcode op) {
  return op == Opcode::Sb || op == Opcode::Sh || op == Opcode::Sw;
}

bool readsRs2(Opcode op) {
  switch (op) {
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu:
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Sll:
    case Opcode::Slt:
    case Opcode::Sltu:
    case Opcode::Xor:
    case Opcode::Srl:
    case Opcode::Sra:
    case Opcode::Or:
    case Opcode::And:
      return true;
    default:
      return false;
  }
}

bool readsRs1(Opcode op) {
  switch (op) {
    case Opcode::Lui:
    case Opcode::Auipc:
    case Opcode::Jal:
    case Opcode::Fence:
    case Opcode::Ecall:
    case Opcode::Ebreak:
    case Opcode::Mret:
    case Opcode::Wfi:
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci:
    case Opcode::Illegal:
      return false;
    default:
      return true;
  }
}

bool writesRd(Opcode op) {
  switch (op) {
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu:
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw:
    case Opcode::Fence:
    case Opcode::Ecall:
    case Opcode::Ebreak:
    case Opcode::Mret:
    case Opcode::Wfi:
    case Opcode::Illegal:
      return false;
    default:
      return true;
  }
}

std::int32_t immI(std::uint32_t insn) {
  return static_cast<std::int32_t>(insn) >> 20;
}

std::int32_t immS(std::uint32_t insn) {
  return ((static_cast<std::int32_t>(insn) >> 20) & ~0x1F) |
         static_cast<std::int32_t>((insn >> 7) & 0x1F);
}

std::int32_t immB(std::uint32_t insn) {
  const std::uint32_t v = ((insn >> 31) << 12) | (((insn >> 7) & 1) << 11) |
                          (((insn >> 25) & 0x3F) << 5) |
                          (((insn >> 8) & 0xF) << 1);
  return static_cast<std::int32_t>(v << 19) >> 19;
}

std::int32_t immU(std::uint32_t insn) {
  return static_cast<std::int32_t>(insn & 0xFFFFF000);
}

std::int32_t immJ(std::uint32_t insn) {
  const std::uint32_t v = ((insn >> 31) << 20) |
                          (((insn >> 12) & 0xFF) << 12) |
                          (((insn >> 20) & 1) << 11) |
                          (((insn >> 21) & 0x3FF) << 1);
  return static_cast<std::int32_t>(v << 11) >> 11;
}

Decoded decode(std::uint32_t insn) {
  Decoded d;
  for (const DecodePattern& p : decodeTable()) {
    if ((insn & p.mask) == p.match) {
      d.op = p.op;
      break;
    }
  }
  if (d.op == Opcode::Illegal) return d;

  d.rd = static_cast<std::uint8_t>((insn >> 7) & 0x1F);
  d.rs1 = static_cast<std::uint8_t>((insn >> 15) & 0x1F);
  d.rs2 = static_cast<std::uint8_t>((insn >> 20) & 0x1F);
  d.funct3 = static_cast<std::uint8_t>((insn >> 12) & 0x7);
  d.shamt = static_cast<std::uint8_t>((insn >> 20) & 0x1F);
  d.zimm = d.rs1;
  d.csr = static_cast<std::uint16_t>(insn >> 20);

  switch (d.op) {
    case Opcode::Lui:
    case Opcode::Auipc:
      d.imm = immU(insn);
      break;
    case Opcode::Jal:
      d.imm = immJ(insn);
      break;
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu:
      d.imm = immB(insn);
      break;
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw:
      d.imm = immS(insn);
      break;
    default:
      d.imm = immI(insn);
      break;
  }
  return d;
}

const char* regName(unsigned index) {
  static constexpr std::array<const char*, 32> names{
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return index < 32 ? names[index] : "?";
}

std::string disassemble(std::uint32_t insn) {
  const Decoded d = decode(insn);
  std::ostringstream os;
  const auto r = [](unsigned i) { return std::string("x") + std::to_string(i); };

  switch (d.op) {
    case Opcode::Illegal:
      os << ".word 0x" << std::hex << insn;
      return os.str();
    case Opcode::Lui:
    case Opcode::Auipc:
      os << opcodeName(d.op) << " " << r(d.rd) << ", 0x" << std::hex
         << (static_cast<std::uint32_t>(d.imm) >> 12);
      return os.str();
    case Opcode::Jal:
      os << "jal " << r(d.rd) << ", " << d.imm;
      return os.str();
    case Opcode::Jalr:
      os << "jalr " << r(d.rd) << ", " << d.imm << "(" << r(d.rs1) << ")";
      return os.str();
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
    case Opcode::Bltu:
    case Opcode::Bgeu:
      os << opcodeName(d.op) << " " << r(d.rs1) << ", " << r(d.rs2) << ", "
         << d.imm;
      return os.str();
    case Opcode::Lb:
    case Opcode::Lh:
    case Opcode::Lw:
    case Opcode::Lbu:
    case Opcode::Lhu:
      os << opcodeName(d.op) << " " << r(d.rd) << ", " << d.imm << "("
         << r(d.rs1) << ")";
      return os.str();
    case Opcode::Sb:
    case Opcode::Sh:
    case Opcode::Sw:
      os << opcodeName(d.op) << " " << r(d.rs2) << ", " << d.imm << "("
         << r(d.rs1) << ")";
      return os.str();
    case Opcode::Slli:
    case Opcode::Srli:
    case Opcode::Srai:
      os << opcodeName(d.op) << " " << r(d.rd) << ", " << r(d.rs1) << ", "
         << static_cast<unsigned>(d.shamt);
      return os.str();
    case Opcode::Addi:
    case Opcode::Slti:
    case Opcode::Sltiu:
    case Opcode::Xori:
    case Opcode::Ori:
    case Opcode::Andi:
      os << opcodeName(d.op) << " " << r(d.rd) << ", " << r(d.rs1) << ", "
         << d.imm;
      return os.str();
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Sll:
    case Opcode::Slt:
    case Opcode::Sltu:
    case Opcode::Xor:
    case Opcode::Srl:
    case Opcode::Sra:
    case Opcode::Or:
    case Opcode::And:
      os << opcodeName(d.op) << " " << r(d.rd) << ", " << r(d.rs1) << ", "
         << r(d.rs2);
      return os.str();
    case Opcode::Csrrw:
    case Opcode::Csrrs:
    case Opcode::Csrrc: {
      const char* csr_name = csrName(d.csr);
      os << opcodeName(d.op) << " " << r(d.rd) << ", ";
      if (csr_name)
        os << csr_name;
      else
        os << "0x" << std::hex << d.csr << std::dec;
      os << ", " << r(d.rs1);
      return os.str();
    }
    case Opcode::Csrrwi:
    case Opcode::Csrrsi:
    case Opcode::Csrrci: {
      const char* csr_name = csrName(d.csr);
      os << opcodeName(d.op) << " " << r(d.rd) << ", ";
      if (csr_name)
        os << csr_name;
      else
        os << "0x" << std::hex << d.csr << std::dec;
      os << ", " << static_cast<unsigned>(d.zimm);
      return os.str();
    }
    case Opcode::Fence:
      return "fence";
    case Opcode::Ecall:
      return "ecall";
    case Opcode::Ebreak:
      return "ebreak";
    case Opcode::Mret:
      return "mret";
    case Opcode::Wfi:
      return "wfi";
  }
  return "?";
}

const char* causeName(Cause c) {
  switch (c) {
    case Cause::MisalignedFetch: return "instruction address misaligned";
    case Cause::FetchAccess: return "instruction access fault";
    case Cause::IllegalInstr: return "illegal instruction";
    case Cause::Breakpoint: return "breakpoint";
    case Cause::MisalignedLoad: return "load address misaligned";
    case Cause::LoadAccess: return "load access fault";
    case Cause::MisalignedStore: return "store address misaligned";
    case Cause::StoreAccess: return "store access fault";
    case Cause::EcallFromU: return "ecall from U-mode";
    case Cause::EcallFromM: return "ecall from M-mode";
  }
  return "?";
}

}  // namespace rvsym::rv32
