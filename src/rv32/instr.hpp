// RV32I + Zicsr + machine-mode privileged instruction definitions:
// opcode enumeration, mask/match decode table, concrete decoder and
// immediate extraction.
//
// The decode table is the ground truth shared by the ISS, the RTL core
// and the fault injector: the paper's E0-E2 faults are "mark a bit as
// don't care in the decode table of instruction X", which maps here to
// clearing a bit in DecodePattern::mask.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace rvsym::rv32 {

enum class Opcode : std::uint8_t {
  Illegal,
  // RV32I
  Lui, Auipc, Jal, Jalr,
  Beq, Bne, Blt, Bge, Bltu, Bgeu,
  Lb, Lh, Lw, Lbu, Lhu,
  Sb, Sh, Sw,
  Addi, Slti, Sltiu, Xori, Ori, Andi,
  Slli, Srli, Srai,
  Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
  Fence, Ecall, Ebreak,
  // Zicsr
  Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci,
  // Privileged (machine mode)
  Mret, Wfi,
};

/// Number of legal (non-Illegal) opcodes. The enum lists Illegal first
/// and the legal encodings contiguously after it, so the last
/// enumerator's value IS the legal count; instr.cpp statically asserts
/// the decode table matches. Coverage denominators derive from this
/// instead of repeating the literal 48.
inline constexpr std::size_t kLegalOpcodeCount =
    static_cast<std::size_t>(Opcode::Wfi);

const char* opcodeName(Opcode op);

/// Coarse instruction class for workload attribution ("alu", "shift",
/// "branch", "jump", "load", "store", "fence", "system", "csr";
/// Illegal -> "illegal").
const char* opcodeClass(Opcode op);

/// Is this a CSR access instruction (Zicsr)?
bool isCsrOp(Opcode op);
/// Is this a load (Lb..Lhu)?
bool isLoad(Opcode op);
/// Is this a store (Sb..Sw)?
bool isStore(Opcode op);
/// Does this opcode read rs2 (R-type, branches, stores)?
bool readsRs2(Opcode op);
/// Does this opcode read rs1? (everything except Lui/Auipc/Jal/
/// Fence/Ecall/Ebreak/Mret/Wfi/CSR*I)
bool readsRs1(Opcode op);
/// Does this opcode write rd?
bool writesRd(Opcode op);

/// One row of the decode table: `instr & mask == match` selects `op`.
/// The table is disjoint: at most one row matches any word.
struct DecodePattern {
  Opcode op;
  std::uint32_t mask;
  std::uint32_t match;
};

/// The full RV32I+Zicsr+priv decode table.
std::span<const DecodePattern> decodeTable();

/// Fully decoded instruction (concrete path: tests, disassembler,
/// mismatch classification).
struct Decoded {
  Opcode op = Opcode::Illegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t funct3 = 0;
  std::int32_t imm = 0;     ///< selected & sign-extended per format
  std::uint16_t csr = 0;    ///< CSR address (I-type imm, zero-extended)
  std::uint8_t shamt = 0;   ///< shift amount for Slli/Srli/Srai
  std::uint8_t zimm = 0;    ///< rs1 field as immediate for CSR*I
};

/// Decodes a concrete instruction word. Unknown encodings yield
/// op == Opcode::Illegal.
Decoded decode(std::uint32_t insn);

/// Immediate extraction per format (sign-extended to 32 bits).
std::int32_t immI(std::uint32_t insn);
std::int32_t immS(std::uint32_t insn);
std::int32_t immB(std::uint32_t insn);
std::int32_t immU(std::uint32_t insn);
std::int32_t immJ(std::uint32_t insn);

/// Renders `insn` as human-readable assembly, e.g. "addi x1, x2, -5" or
/// "csrrw x0, mcycle, x1". Unknown words render as ".word 0x...".
std::string disassemble(std::uint32_t insn);

/// ABI register name (x0 -> "zero", x2 -> "sp", ...).
const char* regName(unsigned index);

/// Machine trap causes (mcause values).
enum class Cause : std::uint32_t {
  MisalignedFetch = 0,
  FetchAccess = 1,
  IllegalInstr = 2,
  Breakpoint = 3,
  MisalignedLoad = 4,
  LoadAccess = 5,
  MisalignedStore = 6,
  StoreAccess = 7,
  EcallFromU = 8,
  EcallFromM = 11,
};

const char* causeName(Cause c);

}  // namespace rvsym::rv32
