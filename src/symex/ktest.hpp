// KTest-style test-vector files.
//
// KLEE persists each explored path's inputs as a .ktest file that can be
// replayed later; this module provides the equivalent for rvsym test
// vectors: a small, versioned, self-describing text format
// (one "name width hex-value" triple per line) with save/load round
// tripping, plus a directory writer that numbers vectors the way KLEE
// numbers test%06d.ktest files.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "symex/engine.hpp"
#include "symex/state.hpp"

namespace rvsym::symex {

/// Serializes a vector to the rvtest text format.
std::string serializeTestVector(const TestVector& vector);

/// Parses the rvtest text format; nullopt on malformed input.
std::optional<TestVector> parseTestVector(const std::string& text);

/// Writes one vector to `path`. Returns false on I/O failure.
bool saveTestVector(const TestVector& vector, const std::string& path);

/// Reads one vector from `path`.
std::optional<TestVector> loadTestVector(const std::string& path);

/// Writes every stored test vector of a report into `directory` as
/// test000001.rvtest, test000002.rvtest, ... (creating the directory).
/// Returns the number of files written.
std::size_t exportReportVectors(const EngineReport& report,
                                const std::string& directory);

}  // namespace rvsym::symex
