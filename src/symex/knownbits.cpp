#include "symex/knownbits.hpp"

namespace rvsym::symex {

using expr::Expr;
using expr::ExprRef;
using expr::Kind;
using expr::widthMask;

void KnownBitsTracker::recordVariableBits(std::uint64_t var_id, unsigned lo,
                                          unsigned width, std::uint64_t bits) {
  KnownBits& kb = facts_[var_id];
  const std::uint64_t field_mask = widthMask(width) << lo;
  kb.mask |= field_mask;
  kb.value = (kb.value & ~field_mask) | ((bits << lo) & field_mask);
}

void KnownBitsTracker::assumeEqConst(const ExprRef& lhs, std::uint64_t c) {
  c &= widthMask(lhs->width());
  switch (lhs->kind()) {
    case Kind::Variable:
      recordVariableBits(lhs->variableId(), 0, lhs->width(), c);
      return;
    case Kind::Extract: {
      const ExprRef& inner = lhs->operand(0);
      if (inner->isVariable())
        recordVariableBits(inner->variableId(), lhs->extractLow(),
                           lhs->width(), c);
      return;
    }
    case Kind::Concat: {
      const unsigned lo_w = lhs->operand(1)->width();
      assumeEqConst(lhs->operand(1), c & widthMask(lo_w));
      assumeEqConst(lhs->operand(0), c >> lo_w);
      return;
    }
    case Kind::ZExt: {
      // zext(x) == c is only satisfiable when the high bits of c are 0;
      // infeasibility is the solver's business, the low bits are ours.
      assumeEqConst(lhs->operand(0), c & widthMask(lhs->operand(0)->width()));
      return;
    }
    case Kind::And: {
      // (x & mask) == c: every mask bit of x is known to equal the
      // corresponding bit of c — the decoder-pattern fact
      // `instr & mask == match` lands here.
      const ExprRef& a = lhs->operand(0);
      const ExprRef& b = lhs->operand(1);
      if (b->isConstant() && a->isVariable()) {
        const std::uint64_t mask = b->constantValue();
        KnownBits& kb = facts_[a->variableId()];
        kb.mask |= mask;
        kb.value = (kb.value & ~mask) | (c & mask);
      }
      return;
    }
    default:
      return;
  }
}

void KnownBitsTracker::assumeTrue(const ExprRef& cond) {
  switch (cond->kind()) {
    case Kind::Eq: {
      const ExprRef& a = cond->operand(0);
      const ExprRef& b = cond->operand(1);
      if (b->isConstant())
        assumeEqConst(a, b->constantValue());
      else if (a->isConstant())
        assumeEqConst(b, a->constantValue());
      return;
    }
    case Kind::And:
      // (a && b) == true implies both.
      assumeTrue(cond->operand(0));
      assumeTrue(cond->operand(1));
      return;
    case Kind::Not: {
      const ExprRef& inner = cond->operand(0);
      // !(x) with x a single extracted bit: that bit is 0.
      if (inner->kind() == Kind::Extract && inner->width() == 1 &&
          inner->operand(0)->isVariable())
        recordVariableBits(inner->operand(0)->variableId(),
                           inner->extractLow(), 1, 0);
      else if (inner->isVariable() && inner->width() == 1)
        recordVariableBits(inner->variableId(), 0, 1, 0);
      // !(a == c) gives no bit-level knowledge; skip.
      return;
    }
    case Kind::Extract:
      if (cond->width() == 1 && cond->operand(0)->isVariable())
        recordVariableBits(cond->operand(0)->variableId(), cond->extractLow(),
                           1, 1);
      return;
    case Kind::Variable:
      if (cond->width() == 1) recordVariableBits(cond->variableId(), 0, 1, 1);
      return;
    default:
      return;
  }
}

KnownBits KnownBitsTracker::variableFacts(std::uint64_t var_id) const {
  auto it = facts_.find(var_id);
  return it == facts_.end() ? KnownBits{} : it->second;
}

KnownBits KnownBitsTracker::compute(const ExprRef& e) const {
  const std::uint64_t wmask = widthMask(e->width());
  switch (e->kind()) {
    case Kind::Constant:
      return {wmask, e->constantValue()};
    case Kind::Variable: {
      KnownBits kb = variableFacts(e->variableId());
      kb.mask &= wmask;
      kb.value &= kb.mask;
      return kb;
    }
    case Kind::Extract: {
      const KnownBits inner = compute(e->operand(0));
      return {(inner.mask >> e->extractLow()) & wmask,
              (inner.value >> e->extractLow()) & wmask};
    }
    case Kind::Concat: {
      const KnownBits hi = compute(e->operand(0));
      const KnownBits lo = compute(e->operand(1));
      const unsigned lo_w = e->operand(1)->width();
      return {(hi.mask << lo_w) | lo.mask, (hi.value << lo_w) | lo.value};
    }
    case Kind::ZExt: {
      const KnownBits inner = compute(e->operand(0));
      const std::uint64_t high =
          wmask & ~widthMask(e->operand(0)->width());
      return {inner.mask | high, inner.value};
    }
    case Kind::SExt: {
      const KnownBits inner = compute(e->operand(0));
      const unsigned iw = e->operand(0)->width();
      const std::uint64_t sign_bit = std::uint64_t{1} << (iw - 1);
      if ((inner.mask & sign_bit) == 0)
        return {inner.mask & widthMask(iw - 1), inner.value & widthMask(iw - 1)};
      const std::uint64_t high = wmask & ~widthMask(iw);
      const bool sign = (inner.value & sign_bit) != 0;
      return {inner.mask | high, inner.value | (sign ? high : 0)};
    }
    case Kind::And: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      // Bit known if: both known, or either known-zero.
      const std::uint64_t known_zero =
          (a.mask & ~a.value) | (b.mask & ~b.value);
      const std::uint64_t both = a.mask & b.mask;
      return {both | known_zero, (a.value & b.value) & ~known_zero};
    }
    case Kind::Or: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const std::uint64_t known_one = (a.mask & a.value) | (b.mask & b.value);
      const std::uint64_t both = a.mask & b.mask;
      return {both | known_one, (a.value | b.value) | known_one};
    }
    case Kind::Xor: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const std::uint64_t both = a.mask & b.mask;
      return {both, (a.value ^ b.value) & both};
    }
    case Kind::Not: {
      const KnownBits a = compute(e->operand(0));
      return {a.mask, ~a.value & a.mask & wmask};
    }
    case Kind::Shl: {
      if (e->operand(1)->isConstant()) {
        const std::uint64_t sh = e->operand(1)->constantValue();
        if (sh >= e->width()) return {wmask, 0};
        const KnownBits a = compute(e->operand(0));
        return {((a.mask << sh) | widthMask(static_cast<unsigned>(sh))) & wmask,
                (a.value << sh) & wmask};
      }
      return {};
    }
    case Kind::LShr: {
      if (e->operand(1)->isConstant()) {
        const std::uint64_t sh = e->operand(1)->constantValue();
        if (sh >= e->width()) return {wmask, 0};
        const KnownBits a = compute(e->operand(0));
        const std::uint64_t amask = a.mask & wmask;
        const std::uint64_t high =
            wmask & ~(wmask >> sh);
        return {(amask >> sh) | high, (a.value & wmask) >> sh};
      }
      return {};
    }
    case Kind::Ite: {
      const KnownBits c = compute(e->operand(0));
      if (c.allKnown(1))
        return compute(c.value ? e->operand(1) : e->operand(2));
      const KnownBits t = compute(e->operand(1));
      const KnownBits f = compute(e->operand(2));
      const std::uint64_t agree = t.mask & f.mask & ~(t.value ^ f.value);
      return {agree, t.value & agree};
    }
    case Kind::Eq: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const unsigned w = e->operand(0)->width();
      // Any commonly-known disagreeing bit decides inequality.
      if ((a.mask & b.mask & (a.value ^ b.value)) != 0) return {1, 0};
      if (a.allKnown(w) && b.allKnown(w) && a.value == b.value) return {1, 1};
      return {};
    }
    case Kind::Ult: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const unsigned w = e->operand(0)->width();
      if (a.allKnown(w) && b.allKnown(w)) return {1, a.value < b.value ? 1u : 0u};
      return {};
    }
    case Kind::Ule: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const unsigned w = e->operand(0)->width();
      if (a.allKnown(w) && b.allKnown(w))
        return {1, a.value <= b.value ? 1u : 0u};
      return {};
    }
    case Kind::Slt:
    case Kind::Sle: {
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      const unsigned w = e->operand(0)->width();
      if (a.allKnown(w) && b.allKnown(w)) {
        const std::int64_t sa = expr::signExtend(a.value, w);
        const std::int64_t sb = expr::signExtend(b.value, w);
        const bool r = e->kind() == Kind::Slt ? sa < sb : sa <= sb;
        return {1, r ? 1u : 0u};
      }
      return {};
    }
    case Kind::Add: {
      // Propagate known low bits through the carry chain.
      const KnownBits a = compute(e->operand(0));
      const KnownBits b = compute(e->operand(1));
      KnownBits out;
      std::uint64_t carry_known = 1, carry = 0;  // carry-in 0 is known
      for (unsigned i = 0; i < e->width(); ++i) {
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (!carry_known || !(a.mask & bit) || !(b.mask & bit)) break;
        const std::uint64_t av = (a.value >> i) & 1, bv = (b.value >> i) & 1;
        const std::uint64_t s = av + bv + carry;
        out.mask |= bit;
        out.value |= (s & 1) << i;
        carry = s >> 1;
      }
      return out;
    }
    default:
      return {};
  }
}

std::optional<bool> KnownBitsTracker::tryEvalBool(const ExprRef& cond) const {
  const KnownBits kb = compute(cond);
  if (kb.allKnown(1)) return (kb.value & 1) != 0;
  return std::nullopt;
}

}  // namespace rvsym::symex
