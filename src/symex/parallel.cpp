#include "symex/parallel.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/flightrec/ring.hpp"
#include <vector>

#include "symex/state.hpp"

namespace rvsym::symex {

namespace {

/// Everything one committed path contributes to the report.
struct PathOutcome {
  PathRecord record;
  std::vector<std::vector<bool>> forks;
  PathStats stats;
  std::uint64_t solver_checks = 0;
  /// Per-path query-cache traffic (timing-dependent: depends on what
  /// other workers solved first).
  std::uint64_t qc_hits = 0;
  std::uint64_t qc_misses = 0;
  /// Checks answered by the cex/subsumption layers (model eval + core
  /// subsumption) and by the rewrite layer. Timing-dependent for the
  /// same reason as qc_hits: the shared store's contents depend on what
  /// other workers solved first (and an exact-cache hit preempts the
  /// later layers), hence the parity-stripped qc_ trace prefix.
  std::uint64_t qc_cex_hits = 0;
  std::uint64_t qc_rewrites = 0;
  /// Worker that executed (not committed) this path — the per-worker
  /// attribution key for cache traffic (qc_worker path_end field).
  unsigned worker = 0;
  /// Events buffered during (speculative) execution; the committer
  /// flushes them in commit order so the trace stays deterministic.
  std::vector<obs::TraceEvent> trace_events;
  /// Program-side time accumulators (ExecState::addTime), emitted as
  /// t_<key>_us path_end fields.
  std::vector<std::pair<std::string, std::uint64_t>> times;
};

struct Task {
  enum class Status { Pending, Claimed, Done };

  Task(std::uint64_t path_id, std::vector<bool> p)
      : id(path_id), prefix(std::move(p)) {}

  /// Stable trace id: assigned at push time in commit order, so it is
  /// identical across worker counts and already known when a worker
  /// claims the task speculatively.
  std::uint64_t id;
  std::vector<bool> prefix;
  Status status = Status::Pending;
  PathOutcome outcome;
  std::exception_ptr error;
};

using TaskRef = std::shared_ptr<Task>;

/// State shared between the committer and the workers. The worklist is
/// policy-ordered and only the committer removes from it; workers claim
/// entries in place (status Pending -> Claimed) and leave them for the
/// committer to pop.
struct Shared {
  std::mutex mu;
  std::condition_variable work_cv;  ///< workers: a new fork or stop
  std::condition_variable done_cv;  ///< committer: a task finished
  std::deque<TaskRef> worklist;
  bool stop = false;
};

/// One worker's private harness.
struct WorkerState {
  unsigned index = 0;
  std::unique_ptr<expr::ExprBuilder> builder;
  std::unique_ptr<solver::CanonicalHasher> hasher;
  PathProgram program;
  ExecState::Limits limits;
};

PathOutcome executePath(const PathProgram& program, expr::ExprBuilder& eb,
                        std::vector<bool> prefix,
                        const ExecState::Limits& limits,
                        const EngineOptions& options) {
  const obs::PhaseTimer path_phase(limits.profiler, "path");
  ExecState state(eb, std::move(prefix), limits);
  PathOutcome out;
  try {
    program(state);
    out.record.end = PathEnd::Completed;
  } catch (const PathTerminated& t) {
    out.record.end = t.end;
    out.record.message = t.message;
  }
  out.record.instructions = state.stats().instructions;
  out.record.decisions = state.decisions();
  out.record.solver_us = state.solverStats().solve_us;
  out.forks = state.pendingForks();
  out.stats = state.stats();
  out.solver_checks = state.solverStats().checks;
  out.qc_hits = state.solverStats().cache_hits;
  out.qc_misses = state.solverStats().cache_misses;
  out.qc_cex_hits =
      state.solverStats().cex_model_hits + state.solverStats().cex_core_hits;
  out.qc_rewrites = state.solverStats().rewrite_decided;
  out.trace_events = std::move(state.traceEvents());
  out.times = state.times();
  if (options.collect_test_vectors &&
      (out.record.end == PathEnd::Completed ||
       out.record.end == PathEnd::Error)) {
    if (std::optional<TestVector> tv = state.solveTestVector()) {
      out.record.test = std::move(*tv);
      out.record.has_test = true;
    }
  }
  // Tag merge on the worker: the tagger is a pure function of the
  // record, so speculative execution commits identical tags.
  detail::finalizeRecordTags(out.record, state.tags(), options);
  return out;
}

/// Picks a speculation target: the Pending entry nearest the end the
/// committer pops from (DFS: back; BFS: front; Random: back — any entry
/// is equally likely to be popped, so recency is as good a bet as any).
/// Claimed entries cluster at the scanned end, so the scan is O(jobs).
TaskRef claimTarget(Shared& sh, EngineOptions::Searcher searcher) {
  const bool from_back = searcher != EngineOptions::Searcher::Bfs;
  const std::size_t n = sh.worklist.size();
  for (std::size_t k = 0; k < n; ++k) {
    TaskRef& t = sh.worklist[from_back ? n - 1 - k : k];
    if (t->status == Task::Status::Pending) {
      t->status = Task::Status::Claimed;
      return t;
    }
  }
  return nullptr;
}

void workerMain(Shared& sh, WorkerState& ws, const EngineOptions& options) {
  // Crash forensics: claim a flight-recorder ring for the thread's
  // lifetime (released on exit so campaigns that spin engines up and
  // down don't exhaust the slot table).
  char fr_name[16];
  std::snprintf(fr_name, sizeof fr_name, "exec%u", ws.index);
  const obs::flightrec::ScopedThread fr_thread(fr_name);
  std::unique_lock<std::mutex> lk(sh.mu);
  for (;;) {
    if (sh.stop) return;
    TaskRef task = claimTarget(sh, options.searcher);
    if (!task) {
      sh.work_cv.wait(lk);
      continue;
    }
    lk.unlock();
    PathOutcome out;
    std::exception_ptr error;
    obs::flightrec::busyBegin();
    try {
      out = executePath(ws.program, *ws.builder, task->prefix, ws.limits,
                        options);
      out.worker = ws.index;
    } catch (...) {
      error = std::current_exception();
    }
    obs::flightrec::busyEnd();
    lk.lock();
    task->outcome = std::move(out);
    task->error = error;
    task->status = Task::Status::Done;
    sh.done_cv.notify_all();
  }
}

}  // namespace

ParallelEngine::ParallelEngine(ParallelEngineOptions options)
    : options_(std::move(options)) {}

EngineReport ParallelEngine::run(const PathProgram& program) {
  return run([&program](WorkerContext&) { return program; });
}

EngineReport ParallelEngine::run(const ProgramFactory& factory) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  EngineReport report;
  const unsigned jobs = options_.jobs == 0 ? 1 : options_.jobs;

  // A budgeted Unknown is not a semantic fact, so conflict-budgeted runs
  // forgo the cache (verdict reuse could turn an Unknown into Sat/Unsat
  // and desynchronize limited-path counts across schedules).
  std::unique_ptr<solver::QueryCache> owned_cache;
  solver::QueryCache* cache = nullptr;
  solver::QueryCache::Stats cache_start{};
  if (options_.solver_max_conflicts == 0) {
    if (options_.shared_cache) {
      // Campaign-owned cache: metrics attachment (if any) is the
      // owner's call, and qcache_* must report this run's traffic, so
      // snapshot the counters now and delta at the end.
      cache = options_.shared_cache;
      cache_start = cache->stats();
    } else if (options_.enable_query_cache) {
      owned_cache = std::make_unique<solver::QueryCache>(options_.cache_shards);
      // The registry is the live aggregation point for cache traffic: the
      // cache bumps "qcache.hits"/"qcache.misses" as lookups happen, and
      // the same totals land in report.qcache_* after the run.
      if (options_.metrics) owned_cache->attachMetrics(*options_.metrics);
      cache = owned_cache.get();
    }
  }

  // The counterexample/subsumption store follows the same budget rule
  // (a budgeted Unknown is not a semantic fact, so the layers are off
  // entirely — ExecState skips them — and attaching a store would only
  // force canonical hashing).
  std::unique_ptr<solver::CexCache> owned_cex;
  solver::CexCache* cex = nullptr;
  if (options_.solver_max_conflicts == 0 && options_.solver_opt.cex_cache) {
    if (options_.shared_cex_cache) {
      cex = options_.shared_cex_cache;
    } else {
      owned_cex = std::make_unique<solver::CexCache>(options_.cache_shards);
      if (options_.metrics) owned_cex->attachMetrics(*options_.metrics);
      cex = owned_cex.get();
    }
  }

  std::vector<WorkerState> workers(jobs);
  for (unsigned i = 0; i < jobs; ++i) {
    workers[i].index = i;
    workers[i].builder = std::make_unique<expr::ExprBuilder>();
    workers[i].hasher = std::make_unique<solver::CanonicalHasher>();
    WorkerContext ctx{i, *workers[i].builder};
    workers[i].program = factory(ctx);
    workers[i].limits =
        ExecState::Limits{options_.max_decisions_per_path,
                          options_.solver_max_conflicts,
                          options_.take_true_first,
                          options_.use_known_bits,
                          cache,
                          // The worker hasher memoizes canonical hashes
                          // across the worker's paths; worth attaching for
                          // the cex store even with the query cache off.
                          (cache || cex) ? workers[i].hasher.get() : nullptr,
                          options_.metrics,
                          options_.telemetry,
                          options_.profiler,
                          options_.trace != nullptr,
                          cex,
                          options_.solver_opt};
  }

  Shared sh;
  sh.worklist.push_back(std::make_shared<Task>(0, std::vector<bool>{}));
  std::uint64_t next_path_id = 1;
  std::uint64_t committed_qc_hits = 0;
  std::uint64_t committed_qc_misses = 0;
  std::uint32_t rng_state =
      options_.random_seed == 0 ? 1 : options_.random_seed;

  detail::ProgressInstruments progress(options_.metrics, jobs);

  RVSYM_TRACE(options_.trace,
              obs::TraceEvent("run_start")
                  .str("searcher", detail::searcherName(options_.searcher))
                  .num("jobs", static_cast<std::uint64_t>(jobs))
                  .num("trace_version",
                       static_cast<std::uint64_t>(obs::kTraceVersion)));

  std::vector<std::thread> threads;
  threads.reserve(jobs - 1);
  for (unsigned i = 1; i < jobs; ++i)
    threads.emplace_back([&sh, &workers, this, i] {
      workerMain(sh, workers[i], options_);
    });
  const auto shutdown = [&] {
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      sh.stop = true;
    }
    sh.work_cv.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
  };

  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  double next_heartbeat = options_.heartbeat_seconds;

  try {
    std::unique_lock<std::mutex> lk(sh.mu);
    while (!sh.worklist.empty()) {
      // Budget checks — identical to Engine::run, applied in commit
      // order, so the report is exact for any worker count.
      if (options_.max_paths != 0 &&
          report.totalPaths() - report.unexplored_forks >=
              options_.max_paths) {
        report.stopped_early = true;
        break;
      }
      if (options_.max_seconds != 0 && elapsed() >= options_.max_seconds) {
        report.stopped_early = true;
        break;
      }
      if (options_.max_instructions != 0 &&
          report.instructions >= options_.max_instructions) {
        report.stopped_early = true;
        break;
      }
      if (options_.heartbeat_seconds > 0 && elapsed() >= next_heartbeat) {
        std::string extra = options_.heartbeat_annotator
                                ? options_.heartbeat_annotator(report)
                                : std::string();
        if (cache) {
          // Live cross-path cache traffic (thread-safe sharded totals).
          const solver::QueryCache::Stats cs = cache->stats();
          char buf[64];
          std::snprintf(buf, sizeof buf, "qcache=%.0f%% (%llu/%llu)",
                        100.0 * cs.hitRate(),
                        static_cast<unsigned long long>(cs.hits),
                        static_cast<unsigned long long>(cs.hits + cs.misses));
          if (!extra.empty()) extra += ' ';
          extra += buf;
        }
        detail::emitHeartbeat(report, elapsed(), sh.worklist.size(), extra,
                              options_.metrics);
        next_heartbeat = elapsed() + options_.heartbeat_seconds;
      }
      progress.depth(sh.worklist.size());

      TaskRef task =
          detail::popNextItem(sh.worklist, options_.searcher, rng_state);
      RVSYM_TRACE(options_.trace,
                  obs::TraceEvent("schedule")
                      .num("path", task->id)
                      .num("depth", static_cast<std::uint64_t>(
                                        task->prefix.size())));
      if (task->status == Task::Status::Pending) {
        // No worker got to it — the committer doubles as worker 0.
        task->status = Task::Status::Claimed;
        lk.unlock();
        PathOutcome out;
        std::exception_ptr error;
        obs::flightrec::busyBegin();
        try {
          out = executePath(workers[0].program, *workers[0].builder,
                            task->prefix, workers[0].limits, options_);
        } catch (...) {
          error = std::current_exception();
        }
        obs::flightrec::busyEnd();
        lk.lock();
        task->outcome = std::move(out);
        task->error = error;
        task->status = Task::Status::Done;
      } else if (task->status == Task::Status::Claimed) {
        sh.done_cv.wait(lk, [&] { return task->status == Task::Status::Done; });
      }
      if (task->error) std::rethrow_exception(task->error);

      // --- Commit (mirrors the sequential engine exactly) ---------------
      PathOutcome& out = task->outcome;

      // Flush events buffered during (possibly speculative) execution —
      // only here, on the committer, so the trace order is the commit
      // order for any worker count.
      if (options_.trace != nullptr) {
        for (obs::TraceEvent& ev : out.trace_events) {
          ev.fields.insert(ev.fields.begin(),
                           {"path", std::to_string(task->id)});
          options_.trace->emit(ev);
        }
      }

      const bool had_forks = !out.forks.empty();
      for (std::vector<bool>& alt : out.forks) {
        const std::uint64_t child_id = next_path_id++;
        RVSYM_TRACE(options_.trace,
                    obs::TraceEvent("fork")
                        .num("path", child_id)
                        .num("parent", task->id)
                        .num("depth", static_cast<std::uint64_t>(
                                          alt.size())));
        sh.worklist.push_back(std::make_shared<Task>(child_id, std::move(alt)));
      }
      if (had_forks) sh.work_cv.notify_all();

      report.instructions += out.stats.instructions;
      report.branches += out.stats.branches;
      report.const_decided += out.stats.const_decided;
      report.knownbits_decided += out.stats.knownbits_decided;
      report.solver_decided += out.stats.solver_decided;
      report.solver_checks += out.solver_checks;

      switch (out.record.end) {
        case PathEnd::Completed: ++report.completed_paths; break;
        case PathEnd::Error: ++report.error_paths; break;
        case PathEnd::Infeasible: ++report.infeasible_paths; break;
        case PathEnd::SolverLimit:
        case PathEnd::Budget: ++report.limited_paths; break;
      }
      if (out.record.has_test) ++report.test_vectors;

      committed_qc_hits += out.qc_hits;
      committed_qc_misses += out.qc_misses;
      RVSYM_TRACE(options_.trace,
                  detail::makePathEndEvent(task->id, out.record,
                                           out.stats.forks, out.solver_checks,
                                           out.times)
                      // qc_* fields are timing-dependent (see trace.hpp).
                      .num("qc_hits", out.qc_hits)
                      .num("qc_misses", out.qc_misses)
                      .num("qc_cex_hits", out.qc_cex_hits)
                      .num("qc_rewrites", out.qc_rewrites)
                      .num("qc_worker",
                           static_cast<std::uint64_t>(out.worker)));
      progress.commit(out.record, out.worker);
      obs::flightrec::emit(obs::flightrec::EventKind::PathCommit, task->id,
                           static_cast<std::uint64_t>(out.record.end),
                           out.stats.instructions,
                           pathEndName(out.record.end));

      const bool is_error = out.record.end == PathEnd::Error;
      const bool store = is_error || options_.max_stored_paths == 0 ||
                         report.paths.size() < options_.max_stored_paths;
      if (store) report.paths.push_back(std::move(out.record));

      if (is_error && options_.stop_on_error) {
        report.stopped_early = true;
        break;
      }
    }
    report.unexplored_forks = sh.worklist.size();
  } catch (...) {
    shutdown();
    throw;
  }
  shutdown();

  report.seconds = elapsed();
  if (cache) {
    if (options_.shared_cache) {
      // Externally shared cache: concurrent runs (campaign hunts) pound
      // the same global counters, so a start/end delta would lump other
      // runs' traffic into this report. The per-path counters captured
      // at execution time are attributed to the run whose solver issued
      // the lookups — sum the committed outcomes instead.
      report.qcache_hits = committed_qc_hits;
      report.qcache_misses = committed_qc_misses;
    } else {
      // Run-private cache: the global delta additionally counts
      // speculatively executed paths that were never committed (see the
      // EngineReport contract).
      const solver::QueryCache::Stats cs = cache->stats();
      report.qcache_hits = cs.hits - cache_start.hits;
      report.qcache_misses = cs.misses - cache_start.misses;
    }
  }
  RVSYM_TRACE(options_.trace,
              obs::TraceEvent("run_end")
                  .num("paths", report.totalPaths())
                  .num("completed", report.completed_paths)
                  .num("errors", report.error_paths)
                  .num("unexplored", report.unexplored_forks)
                  .num("instr", report.instructions)
                  .num("t_s", report.seconds)
                  .num("qc_hits", report.qcache_hits)
                  .num("qc_misses", report.qcache_misses));
  if (options_.trace) options_.trace->flush();
  return report;
}

}  // namespace rvsym::symex
