// Engine — explores all paths of a symbolic program (the KLEE substitute).
//
// The program is an arbitrary callable taking an ExecState. The engine
// maintains a worklist of decision prefixes, re-executes the program per
// prefix (replay-based forking) and aggregates per-path outcomes into an
// EngineReport whose counters mirror the numbers the paper reports from
// KLEE: completed paths, partial paths, executed instructions, wall time,
// and generated test vectors.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "expr/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "symex/state.hpp"

namespace rvsym::symex {

struct EngineOptions {
  enum class Searcher { Dfs, Bfs, Random };
  Searcher searcher = Searcher::Dfs;
  /// Direction taken first at a two-sided fork.
  bool take_true_first = true;
  /// Stop after this many paths (0 = unlimited).
  std::uint64_t max_paths = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double max_seconds = 0;
  /// Total executed-instruction budget (0 = unlimited).
  std::uint64_t max_instructions = 0;
  /// Per-path decision budget (0 = unlimited).
  std::uint64_t max_decisions_per_path = 100000;
  /// SAT conflict budget per query (0 = unlimited).
  std::uint64_t solver_max_conflicts = 0;
  /// Stop exploring on the first Error path (KLEE --exit-on-error).
  bool stop_on_error = true;
  /// Solve and store a test vector for Completed and Error paths.
  bool collect_test_vectors = true;
  /// Seed for the Random searcher.
  std::uint32_t random_seed = 0x5eed5eed;
  /// Known-bits fast path (disable only for ablation benchmarks).
  bool use_known_bits = true;
  /// Solver acceleration layers (--solver-opt=; solver/options.hpp).
  /// Every layer is sound, so verdicts, test vectors and reports are
  /// byte-identical across configurations; only timing fields move.
  /// Ignored when solver_max_conflicts != 0.
  solver::SolverOptions solver_opt{};
  /// Keep at most this many non-error path records in the report
  /// (counters are exact regardless). 0 = keep all.
  std::uint64_t max_stored_paths = 0;

  // --- Observability (all optional; the engine owns none of them) ---------
  /// Structured JSONL event sink for the path lifecycle (see obs/trace.hpp
  /// for the schema and determinism contract). nullptr disables tracing at
  /// zero cost beyond one branch per event site.
  obs::TraceSink* trace = nullptr;
  /// Metrics registry: solver check-latency histogram, per-instruction
  /// step-time histograms (when the program records them), worklist-depth
  /// gauge and query-cache counters.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-query solver telemetry (shared across workers): structural
  /// hash, node/var/clause counts, bitblast/SAT timing split, and the
  /// slow-query corpus dump (solver/telemetry.hpp).
  solver::SolverTelemetry* telemetry = nullptr;
  /// Phase profiler: each path runs under a "path" phase; the
  /// co-simulation and solver nest "rtl"/"iss"/"voter"/"solver" inside
  /// it. Folded-stack output via obs::PhaseProfiler::folded().
  obs::PhaseProfiler* profiler = nullptr;
  /// Emit a progress heartbeat line on stderr every this many seconds
  /// (0 = off). Wall-clock driven, so inherently timing-dependent; it
  /// never goes into the trace.
  double heartbeat_seconds = 0;
  /// Optional extra heartbeat text computed from the committed report so
  /// far (e.g. live test-set coverage percent). Called on the committer
  /// under its lock — keep it cheap.
  std::function<std::string(const struct EngineReport&)> heartbeat_annotator;
  /// Derives deterministic workload tags from a committed path record
  /// (e.g. instruction classes decoded from the test vector). Merged
  /// with the tags the program added via ExecState::addTag, sorted and
  /// deduplicated, stored on the record and emitted at path_end. Must be
  /// a pure function of the record so traces stay identical across
  /// worker counts.
  std::function<std::vector<std::string>(const struct PathRecord&)> path_tagger;
};

struct PathRecord {
  PathEnd end = PathEnd::Completed;
  std::string message;
  TestVector test;
  bool has_test = false;
  std::uint64_t instructions = 0;
  std::vector<bool> decisions;
  /// Sorted, deduplicated workload tags (program ExecState tags plus
  /// EngineOptions::path_tagger output). Deterministic.
  std::vector<std::string> tags;
  /// Wall time this path spent inside SAT solves (timing-dependent;
  /// emitted as the t_solver_us path_end field). Populated only when a
  /// trace sink or metrics registry is configured.
  std::uint64_t solver_us = 0;
};

// Determinism contract, field by field. For a fixed workload and
// EngineOptions, every field below is byte-identical across worker
// counts (--jobs N), schedules and query-cache states — the speculative
// parallel engine commits in sequential order and solver models are
// canonical — EXCEPT:
//   * `seconds`           — wall clock;
//   * `qcache_hits`,
//     `qcache_misses`     — which worker wins the race to solve a query
//                           decides hit vs. miss, and totals include
//                           speculatively executed paths that a budget
//                           or stop-on-error run later discards.
// Everything else (path counts, instructions, branches, decision-stage
// counters, solver_checks, test_vectors, the per-path records including
// their test vectors) is deterministic; tests and the scaling bench
// compare them across jobs values directly.
struct EngineReport {
  // Paper-facing counters.
  std::uint64_t completed_paths = 0;  ///< "Paths" in Table II
  std::uint64_t error_paths = 0;
  std::uint64_t infeasible_paths = 0;
  std::uint64_t limited_paths = 0;    ///< solver/budget terminations
  std::uint64_t unexplored_forks = 0; ///< worklist left when the run stopped
  std::uint64_t instructions = 0;     ///< "# Exec. Instr." in Table II
  double seconds = 0;                 ///< "Time [s]" in Table II
  std::uint64_t test_vectors = 0;

  // Engine internals.
  std::uint64_t branches = 0;
  std::uint64_t const_decided = 0;
  std::uint64_t knownbits_decided = 0;
  std::uint64_t solver_decided = 0;
  std::uint64_t solver_checks = 0;
  /// Cross-path query-cache traffic (ParallelEngine only; totals include
  /// speculatively executed paths, so — like `seconds` — they are exact
  /// but timing-dependent, unlike every other counter here).
  std::uint64_t qcache_hits = 0;
  std::uint64_t qcache_misses = 0;
  bool stopped_early = false;

  std::vector<PathRecord> paths;

  /// "Partial Paths" in Table II: every path KLEE could not run to its
  /// normal end, plus forks that were never scheduled.
  std::uint64_t partialPaths() const {
    return error_paths + infeasible_paths + limited_paths + unexplored_forks;
  }
  std::uint64_t totalPaths() const {
    return completed_paths + partialPaths();
  }
  /// First Error record, if any.
  const PathRecord* firstError() const;
};

/// Renders the report as a JSON object through the shared obs serializer
/// — the one emitter rvsym-verify --metrics-out and all benches reuse.
/// Deterministic fields come first; the timing-dependent ones (see the
/// contract above) are grouped under a "timing" sub-object.
std::string reportToJson(const EngineReport& report);

namespace detail {

/// Lower-case searcher name for trace events ("dfs" / "bfs" / "random").
const char* searcherName(EngineOptions::Searcher s);

/// One stderr progress line; shared by both engines' heartbeats.
/// Delegates to obs::formatHeartbeatLine — the single formatter the
/// campaign runner and the timeseries sampler also use — after filling a
/// HeartbeatSnapshot from the committed report. `extra` (annotator
/// output, query-cache hit rate) is appended verbatim; with a metrics
/// registry the snapshot gains the live solver section (qps, latency
/// percentiles, disposition split).
void emitHeartbeat(const EngineReport& report, double elapsed_s,
                   std::size_t worklist_depth, const std::string& extra,
                   obs::MetricsRegistry* metrics = nullptr);

/// Pre-resolved registry instruments both engines bump at commit time —
/// the race-free live-progress surface the timeseries sampler and any
/// other registry reader observe (obs/heartbeat.hpp readProgress).
/// Commit order is deterministic, so the final counter values are
/// byte-identical across --jobs; only the instants they move are
/// timing-dependent. All members stay null without a registry, making
/// every call a no-op.
struct ProgressInstruments {
  ProgressInstruments() = default;
  /// Resolves engine.paths_* / engine.instructions / the
  /// engine.worklist_depth gauge, plus one engine.worker<N>.committed
  /// counter per worker for execution attribution.
  explicit ProgressInstruments(obs::MetricsRegistry* registry,
                               unsigned workers = 1);

  /// Bumps the outcome counters for one committed path; `worker` is the
  /// index that executed (not committed) it.
  void commit(const PathRecord& record, unsigned worker = 0);
  /// Mirrors the live worklist depth into the gauge (value + max).
  void depth(std::size_t n);

  obs::Counter* committed = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* error = nullptr;
  obs::Counter* partial = nullptr;
  obs::Counter* instructions = nullptr;
  obs::Gauge* worklist = nullptr;
  std::vector<obs::Counter*> per_worker;
};

/// Merges the program's ExecState tags with the options tagger's output
/// into record.tags, sorted and deduplicated (the deterministic tag
/// contract of the path_end event).
void finalizeRecordTags(PathRecord& record,
                        const std::vector<std::string>& state_tags,
                        const EngineOptions& options);

/// Builds the path_end trace event shared by both engines: lifecycle
/// counters, deterministic enrichment (`tags`, serialized `test`) and
/// the timing-dependent attribution fields (`t_solver_us`, one
/// `t_<key>_us` per ExecState time accumulator).
obs::TraceEvent makePathEndEvent(
    std::uint64_t path_id, const PathRecord& record, std::uint64_t forks,
    std::uint64_t solver_checks,
    const std::vector<std::pair<std::string, std::uint64_t>>& times);

/// Pops the next worklist item under the searcher policy. Shared by
/// Engine and ParallelEngine so both commit paths in the identical,
/// deterministic order. Random removal is O(1): swap the chosen item
/// with the back and pop (still a fixed permutation for a fixed seed).
template <typename Deque>
typename Deque::value_type popNextItem(Deque& worklist,
                                       EngineOptions::Searcher searcher,
                                       std::uint32_t& rng_state) {
  typename Deque::value_type item;
  switch (searcher) {
    case EngineOptions::Searcher::Dfs:
      item = std::move(worklist.back());
      worklist.pop_back();
      break;
    case EngineOptions::Searcher::Bfs:
      item = std::move(worklist.front());
      worklist.pop_front();
      break;
    case EngineOptions::Searcher::Random: {
      // xorshift32; deterministic for a fixed seed.
      rng_state ^= rng_state << 13;
      rng_state ^= rng_state >> 17;
      rng_state ^= rng_state << 5;
      const std::size_t i = rng_state % worklist.size();
      if (i != worklist.size() - 1) std::swap(worklist[i], worklist.back());
      item = std::move(worklist.back());
      worklist.pop_back();
      break;
    }
  }
  return item;
}

}  // namespace detail

class Engine {
 public:
  Engine(expr::ExprBuilder& eb, EngineOptions options);

  /// Runs `program` on every path. The callable may throw PathTerminated
  /// (via ExecState helpers); any other exception propagates.
  EngineReport run(const std::function<void(ExecState&)>& program);

  const EngineOptions& options() const { return options_; }

 private:
  /// One scheduled path: a decision prefix plus its stable trace id
  /// (assigned in discovery order; the root path is 0). The id stream is
  /// deterministic because forks are pushed in commit order.
  struct WorkItem {
    std::uint64_t id = 0;
    std::vector<bool> prefix;
  };

  WorkItem popNext();

  expr::ExprBuilder& eb_;
  EngineOptions options_;
  std::deque<WorkItem> worklist_;
  std::uint32_t rng_state_ = 0;
};

}  // namespace rvsym::symex
