#include "symex/state.hpp"

#include <cassert>

namespace rvsym::symex {

using expr::ExprRef;

const char* pathEndName(PathEnd end) {
  switch (end) {
    case PathEnd::Completed: return "completed";
    case PathEnd::Error: return "error";
    case PathEnd::Infeasible: return "infeasible";
    case PathEnd::SolverLimit: return "solver-limit";
    case PathEnd::Budget: return "budget";
  }
  return "?";
}

std::optional<std::uint64_t> TestVector::lookup(const std::string& name) const {
  for (const TestValue& v : values)
    if (v.name == name) return v.value;
  return std::nullopt;
}

ExecState::ExecState(expr::ExprBuilder& eb, std::vector<bool> forced_decisions,
                     Limits limits)
    : eb_(eb), solver_(eb), forced_(std::move(forced_decisions)),
      limits_(limits) {
  if (limits_.query_hasher)
    solver_.attachCache(limits_.query_cache, limits_.query_hasher);
  if (limits_.solver_max_conflicts == 0) {
    solver_.setOptions(limits_.solver_opt);
    // Only attach the shared cex/subsumption store when the layer is on;
    // attaching it would otherwise force canonical hashing for nothing.
    solver_.attachCexCache(limits_.solver_opt.cex_cache ? limits_.cex_cache
                                                        : nullptr);
  }
  if (limits_.metrics) solver_.attachMetrics(limits_.metrics);
  if (limits_.telemetry) solver_.attachTelemetry(limits_.telemetry);
  if (limits_.profiler) solver_.attachProfiler(limits_.profiler);
  // A trace sink wants exact per-path solver-time attribution at
  // path_end even without a metrics registry.
  solver_.enableTiming(limits_.trace_path_events);
}

ExprRef ExecState::makeSymbolic(const std::string& name, unsigned width) {
  ExprRef v = eb_.variable(name, width);
  // Track first-creation order for this path: the test vector covers
  // exactly these inputs, independent of what other paths (or other
  // workers' builders) have created.
  bool seen = false;
  for (const ExprRef& s : symbolics_)
    if (s.get() == v.get()) {
      seen = true;
      break;
    }
  if (!seen) symbolics_.push_back(v);
  return v;
}

void ExecState::addConstraintChecked(const ExprRef& cond) {
  if (!solver_.addConstraint(cond))
    throw PathTerminated{PathEnd::Infeasible, "constraint folded to false"};
  known_.assumeTrue(cond);
}

void ExecState::assume(const ExprRef& cond) {
  ++stats_.assumes;
  assert(cond->width() == 1);
  if (cond->isConstant()) {
    if (cond->constantValue() == 0)
      throw PathTerminated{PathEnd::Infeasible, "assume(false)"};
    return;
  }
  switch (solver_.check(cond, limits_.solver_max_conflicts)) {
    case solver::CheckResult::Unsat:
      throw PathTerminated{PathEnd::Infeasible, "assume() infeasible"};
    case solver::CheckResult::Unknown:
      throw PathTerminated{PathEnd::SolverLimit, "assume() solver budget"};
    case solver::CheckResult::Sat:
      break;
  }
  addConstraintChecked(cond);
}

bool ExecState::branch(const ExprRef& cond) {
  ++stats_.branches;
  assert(cond->width() == 1);

  // Stage 1: constant fold.
  if (cond->isConstant()) {
    ++stats_.const_decided;
    return cond->constantValue() != 0;
  }
  // Stage 2: known-bits fast path. Sound: the knowledge was derived from
  // this path's constraints, so no constraint needs to be recorded.
  if (limits_.use_known_bits) {
    if (std::optional<bool> kb = known_.tryEvalBool(cond)) {
      ++stats_.knownbits_decided;
      return *kb;
    }
  }

  // Stage 3: solver. Every branch reaching this stage records a decision
  // bit so replays stay aligned with the original run.
  ++stats_.solver_decided;
  if (limits_.max_decisions != 0 && decisions_.size() >= limits_.max_decisions)
    throw PathTerminated{PathEnd::Budget, "max decisions per path"};

  if (cursor_ < forced_.size()) {
    // Replay: trust the recorded direction (it was feasible when found).
    const bool dir = forced_[cursor_++];
    decisions_.push_back(dir);
    addConstraintChecked(dir ? cond : eb_.notOp(cond));
    return dir;
  }

  const solver::CheckResult true_r =
      solver_.check(cond, limits_.solver_max_conflicts);
  if (true_r == solver::CheckResult::Unknown)
    throw PathTerminated{PathEnd::SolverLimit, "branch() solver budget"};
  const ExprRef not_cond = eb_.notOp(cond);
  const solver::CheckResult false_r =
      solver_.check(not_cond, limits_.solver_max_conflicts);
  if (false_r == solver::CheckResult::Unknown)
    throw PathTerminated{PathEnd::SolverLimit, "branch() solver budget"};

  const bool true_ok = true_r == solver::CheckResult::Sat;
  const bool false_ok = false_r == solver::CheckResult::Sat;
  if (!true_ok && !false_ok)
    throw PathTerminated{PathEnd::Infeasible, "branch() with unsat path"};

  bool dir;
  if (true_ok && false_ok) {
    ++stats_.forks;
    dir = limits_.take_true_first;
    std::vector<bool> alt = decisions_;
    alt.push_back(!dir);
    pending_forks_.push_back(std::move(alt));
  } else {
    dir = true_ok;
  }
  decisions_.push_back(dir);
  addConstraintChecked(dir ? cond : not_cond);
  return dir;
}

std::uint64_t ExecState::concretize(const ExprRef& e) {
  ++stats_.concretizations;
  if (e->isConstant()) return e->constantValue();
  std::optional<expr::Assignment> m = solver_.model();
  if (!m)
    throw PathTerminated{PathEnd::Infeasible, "concretize() on unsat path"};
  const std::uint64_t v = expr::evaluate(e, *m);
  addConstraintChecked(eb_.eqConst(e, v));
  return v;
}

void ExecState::fail(std::string message) {
  throw PathTerminated{PathEnd::Error, std::move(message)};
}

void ExecState::finish() {
  throw PathTerminated{PathEnd::Completed, {}};
}

bool ExecState::mustBeTrue(const ExprRef& cond) {
  if (cond->isConstant()) return cond->constantValue() != 0;
  if (std::optional<bool> kb = known_.tryEvalBool(cond)) return *kb;
  return solver_.check(eb_.notOp(cond), limits_.solver_max_conflicts) ==
         solver::CheckResult::Unsat;
}

std::optional<expr::Assignment> ExecState::counterexample(const ExprRef& cond) {
  return solver_.model(eb_.notOp(cond));
}

std::optional<expr::Assignment> ExecState::pathModel() {
  return solver_.model();
}

std::optional<TestVector> ExecState::solveTestVector() {
  std::optional<expr::Assignment> m = solver_.model();
  if (!m) return std::nullopt;
  TestVector tv;
  for (const ExprRef& v : symbolics_)
    tv.values.push_back(TestValue{v->name(), v->width(), m->get(v->variableId())});
  return tv;
}

}  // namespace rvsym::symex
