#include "symex/ktest.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rvsym::symex {

namespace {
constexpr const char* kMagic = "rvtest-v1";
}

std::string serializeTestVector(const TestVector& vector) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << vector.values.size() << "\n";
  for (const TestValue& v : vector.values) {
    os << v.name << " " << v.width << " " << std::hex << v.value << std::dec
       << "\n";
  }
  return os.str();
}

std::optional<TestVector> parseTestVector(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  if (!(is >> magic) || magic != kMagic) return std::nullopt;
  std::size_t count = 0;
  if (!(is >> count)) return std::nullopt;
  TestVector tv;
  tv.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TestValue v;
    if (!(is >> v.name >> v.width >> std::hex >> v.value >> std::dec))
      return std::nullopt;
    if (v.width == 0 || v.width > 64) return std::nullopt;
    tv.values.push_back(std::move(v));
  }
  return tv;
}

bool saveTestVector(const TestVector& vector, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serializeTestVector(vector);
  return static_cast<bool>(out);
}

std::optional<TestVector> loadTestVector(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parseTestVector(buffer.str());
}

std::size_t exportReportVectors(const EngineReport& report,
                                const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return 0;
  std::size_t written = 0;
  for (const PathRecord& p : report.paths) {
    if (!p.has_test) continue;
    char name[32];
    std::snprintf(name, sizeof name, "test%06zu.rvtest", written + 1);
    if (saveTestVector(p.test, directory + "/" + name)) ++written;
  }
  return written;
}

}  // namespace rvsym::symex
