// ExecState — one symbolic execution path.
//
// This is the paper's "symbolic execution interface": the co-simulation
// calls makeSymbolic (klee_make_symbolic), assume (klee_assume) and
// branches on symbolic conditions. Forking is replay-based: a path is
// identified by the sequence of solver-undetermined branch decisions it
// took; the engine re-runs the program with a forced decision prefix to
// explore an alternative.
//
// Decision recording invariant: a decision bit is recorded for every
// branch that reaches the solver stage (i.e. was not decided by constant
// folding or the known-bits fast path). Both one-sided and two-sided
// solver outcomes record a bit, so replays stay aligned; only two-sided
// branches push a pending fork.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "expr/expr.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "solver/solver.hpp"
#include "solver/telemetry.hpp"
#include "symex/knownbits.hpp"

namespace rvsym::symex {

/// Why a path stopped.
enum class PathEnd {
  Completed,   ///< program ran to its normal end (e.g. instruction limit)
  Error,       ///< ExecState::fail() — e.g. the voter found a mismatch
  Infeasible,  ///< an assume() contradicted the path constraints
  SolverLimit, ///< a solver budget was exhausted mid-path
  Budget,      ///< an engine budget (decisions per path) was exhausted
};

const char* pathEndName(PathEnd end);

/// Thrown to unwind the program when a path terminates early.
struct PathTerminated {
  PathEnd end;
  std::string message;
};

/// One named symbolic input with its solved concrete value (the KLEE
/// "ktest" analog).
struct TestValue {
  std::string name;
  unsigned width = 0;
  std::uint64_t value = 0;
};

struct TestVector {
  std::vector<TestValue> values;

  /// Value by name; nullopt if the vector has no such input.
  std::optional<std::uint64_t> lookup(const std::string& name) const;
};

/// Per-path statistics, aggregated by the engine.
struct PathStats {
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t const_decided = 0;
  std::uint64_t knownbits_decided = 0;
  std::uint64_t solver_decided = 0;
  std::uint64_t forks = 0;
  std::uint64_t assumes = 0;
  std::uint64_t concretizations = 0;
};

class ExecState {
 public:
  struct Limits {
    std::uint64_t max_decisions = 0;       // 0 = unlimited
    std::uint64_t solver_max_conflicts = 0;
    bool take_true_first = true;
    /// Disables the known-bits fast path (ablation benchmarking only).
    bool use_known_bits = true;
    /// Optional cross-path query cache (shared, thread-safe) plus the
    /// owning worker's canonical hasher (thread-private). Both or none.
    solver::QueryCache* query_cache = nullptr;
    solver::CanonicalHasher* query_hasher = nullptr;
    /// Optional metrics registry (shared, thread-safe): attaches the
    /// solver check-latency histogram to this path's solver.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional per-query solver telemetry (shared, thread-safe): hash,
    /// node/var/clause counts, bitblast/SAT split, slow-query corpus.
    solver::SolverTelemetry* telemetry = nullptr;
    /// Optional phase profiler (shared, thread-safe): the solver nests a
    /// "solver" phase, the co-simulation "rtl"/"iss"/"voter", the
    /// engines wrap each path in "path".
    obs::PhaseProfiler* profiler = nullptr;
    /// Buffer path-local trace events (see traceEvent below). Set by the
    /// engines iff a trace sink is configured.
    bool trace_path_events = false;
    /// Optional shared counterexample/subsumption cache (thread-safe).
    /// Needs query_hasher (or the solver's private hasher) for canonical
    /// keys.
    solver::CexCache* cex_cache = nullptr;
    /// Solver acceleration layers (DESIGN.md §10). Ignored when
    /// solver_max_conflicts != 0: budgeted runs bypass every cache layer
    /// anyway, so the plain incremental solver is kept.
    solver::SolverOptions solver_opt{};
  };

  ExecState(expr::ExprBuilder& eb, std::vector<bool> forced_decisions,
            Limits limits);

  expr::ExprBuilder& builder() { return eb_; }

  // --- The symbolic execution interface (paper §IV-C) ---------------------
  /// klee_make_symbolic: returns the (interned) symbolic variable `name`.
  expr::ExprRef makeSymbolic(const std::string& name, unsigned width);

  /// klee_assume: conjoins `cond` to the path constraints; terminates the
  /// path as Infeasible if the constraints become unsatisfiable.
  void assume(const expr::ExprRef& cond);

  /// Data-dependent branch; returns the direction taken on this path and
  /// may schedule the opposite direction as a pending fork.
  bool branch(const expr::ExprRef& cond);

  /// Pins `e` to a concrete value consistent with the path constraints
  /// (KLEE-style address concretization) and returns it.
  std::uint64_t concretize(const expr::ExprRef& e);

  /// Terminates this path as an Error (voter mismatch).
  [[noreturn]] void fail(std::string message);

  /// Terminates this path as Completed (e.g. execution-controller limit).
  [[noreturn]] void finish();

  // --- Queries -------------------------------------------------------------
  /// True iff `cond` holds on every assignment satisfying the path.
  bool mustBeTrue(const expr::ExprRef& cond);
  /// A model of the path constraints where `cond` is false, if any.
  std::optional<expr::Assignment> counterexample(const expr::ExprRef& cond);
  /// A model of the current path constraints.
  std::optional<expr::Assignment> pathModel();

  // --- Accounting ------------------------------------------------------------
  void countInstruction(std::uint64_t n = 1) { stats_.instructions += n; }
  const PathStats& stats() const { return stats_; }

  // --- Observability ----------------------------------------------------------
  /// True iff the engine wants path-local trace events buffered. Use the
  /// RVSYM_TRACE_PATH macro rather than calling traceEvent directly so
  /// event construction is skipped when tracing is off (and compiled out
  /// entirely under RVSYM_OBS_NO_TRACING).
  bool tracingEnabled() const { return limits_.trace_path_events; }
  /// Phase profiler for this run (null when profiling is off) — the
  /// co-simulation opens its "rtl"/"iss"/"voter" phases against this.
  obs::PhaseProfiler* profiler() const { return limits_.profiler; }
  /// Buffers an event produced while executing this path (e.g. a voter
  /// verdict). The engine flushes the buffer to the trace sink at commit
  /// time, in deterministic commit order, with the path id attached —
  /// never from the (possibly speculative) executing thread.
  void traceEvent(obs::TraceEvent ev) {
    trace_events_.push_back(std::move(ev));
  }
  std::vector<obs::TraceEvent>& traceEvents() { return trace_events_; }

  /// Tags this path with a deterministic workload annotation (e.g.
  /// "voter:rd", "trap:2"). Tags are deduplicated and sorted by the
  /// engine, stored on the PathRecord and emitted with the path_end
  /// trace event — the offline analyzer's attribution keys. Cheap
  /// enough to record unconditionally (a handful per path).
  void addTag(std::string tag) {
    for (const std::string& t : tags_)
      if (t == tag) return;
    tags_.push_back(std::move(tag));
  }
  const std::vector<std::string>& tags() const { return tags_; }

  /// Accumulates wall time under a short key; the engine emits each
  /// accumulator as a "t_<key>_us" path_end field (timing-dependent by
  /// the trace contract). Used by the co-simulation for per-path RTL
  /// and ISS step-time attribution.
  void addTime(std::string_view key, std::uint64_t us) {
    for (auto& [k, v] : times_)
      if (k == key) {
        v += us;
        return;
      }
    times_.emplace_back(std::string(key), us);
  }
  const std::vector<std::pair<std::string, std::uint64_t>>& times() const {
    return times_;
  }

  // --- Engine internals -------------------------------------------------------
  const std::vector<bool>& decisions() const { return decisions_; }
  /// Pending forks discovered on this path: full decision prefixes for the
  /// unexplored directions, in discovery order.
  const std::vector<std::vector<bool>>& pendingForks() const {
    return pending_forks_;
  }
  /// Solves the final path constraints into a test vector covering the
  /// symbolic inputs created on *this* path (the KLEE ktest object set).
  std::optional<TestVector> solveTestVector();
  const solver::QueryStats& solverStats() const { return solver_.stats(); }
  const std::vector<expr::ExprRef>& constraints() const {
    return solver_.constraints();
  }

 private:
  void addConstraintChecked(const expr::ExprRef& cond);

  expr::ExprBuilder& eb_;
  solver::PathSolver solver_;
  KnownBitsTracker known_;
  std::vector<expr::ExprRef> symbolics_;  ///< makeSymbolic calls, this path
  std::vector<bool> forced_;
  std::size_t cursor_ = 0;
  std::vector<bool> decisions_;
  std::vector<std::vector<bool>> pending_forks_;
  Limits limits_;
  PathStats stats_;
  std::vector<obs::TraceEvent> trace_events_;
  std::vector<std::string> tags_;
  std::vector<std::pair<std::string, std::uint64_t>> times_;
};

}  // namespace rvsym::symex

/// Buffers a path-local trace event iff the engine enabled tracing for
/// this run; `event_expr` is not evaluated otherwise. Compiled out by
/// RVSYM_OBS_NO_TRACING.
#ifdef RVSYM_OBS_NO_TRACING
#define RVSYM_TRACE_PATH(state, event_expr) ((void)0)
#else
#define RVSYM_TRACE_PATH(state, event_expr)              \
  do {                                                   \
    if ((state).tracingEnabled()) {                      \
      (state).traceEvent(event_expr);                    \
    }                                                    \
  } while (0)
#endif
