// Known-bits abstract domain over path constraints.
//
// The co-simulation's hottest branch pattern is `extract(instr, lo, w) ==
// constant` — instruction decoding in both the ISS and the RTL core. Once
// a path has assumed a handful of such facts, almost every later decoder
// branch is already decided. This analyzer records bit-level knowledge
// per variable from assumed constraints and evaluates branch conditions
// against it, answering definitely-true/definitely-false without touching
// the SAT solver. It is sound (never claims knowledge it does not have)
// and deliberately incomplete; the solver remains the fallback.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "expr/expr.hpp"

namespace rvsym::symex {

/// Bit-level knowledge about a value: for every bit i with mask bit set,
/// the value bit is known to be value[i].
struct KnownBits {
  std::uint64_t mask = 0;
  std::uint64_t value = 0;  // bits outside mask are zero

  bool allKnown(unsigned width) const {
    return (mask & expr::widthMask(width)) == expr::widthMask(width);
  }
  /// Do the known bits contradict constant `c`?
  bool contradicts(std::uint64_t c) const { return ((c ^ value) & mask) != 0; }
};

class KnownBitsTracker {
 public:
  /// Records the facts implied by an assumed (true) width-1 constraint.
  void assumeTrue(const expr::ExprRef& cond);

  /// Attempts to decide a width-1 condition from tracked knowledge.
  std::optional<bool> tryEvalBool(const expr::ExprRef& cond) const;

  /// Computes the known bits of an arbitrary expression (bottom-up
  /// propagation through the supported operators).
  KnownBits compute(const expr::ExprRef& e) const;

  /// Facts recorded for a variable (empty knowledge if none).
  KnownBits variableFacts(std::uint64_t var_id) const;

 private:
  void recordVariableBits(std::uint64_t var_id, unsigned lo, unsigned width,
                          std::uint64_t bits);
  /// Handles `lhs == c` facts, descending into extracts/concats.
  void assumeEqConst(const expr::ExprRef& lhs, std::uint64_t c);

  std::unordered_map<std::uint64_t, KnownBits> facts_;
};

}  // namespace rvsym::symex
