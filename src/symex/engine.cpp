#include "symex/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/flightrec/ring.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"

namespace rvsym::symex {

namespace detail {

const char* searcherName(EngineOptions::Searcher s) {
  switch (s) {
    case EngineOptions::Searcher::Dfs: return "dfs";
    case EngineOptions::Searcher::Bfs: return "bfs";
    case EngineOptions::Searcher::Random: return "random";
  }
  return "?";
}

void emitHeartbeat(const EngineReport& report, double elapsed_s,
                   std::size_t worklist_depth, const std::string& extra,
                   obs::MetricsRegistry* metrics) {
  obs::HeartbeatSnapshot s;
  s.elapsed_s = elapsed_s;
  s.has_paths = true;
  s.paths_done = report.totalPaths() - report.unexplored_forks;
  s.paths_completed = report.completed_paths;
  s.paths_error = report.error_paths;
  s.paths_partial =
      report.error_paths + report.infeasible_paths + report.limited_paths;
  s.worklist_depth = worklist_depth;
  s.instructions = report.instructions;
  if (metrics != nullptr) s.readRegistry(*metrics);
  s.extra = extra;
  obs::emitHeartbeatLine(s, "rvsym");
}

ProgressInstruments::ProgressInstruments(obs::MetricsRegistry* registry,
                                         unsigned workers) {
  if (registry == nullptr) return;
  committed = &registry->counter("engine.paths_committed");
  completed = &registry->counter("engine.paths_completed");
  error = &registry->counter("engine.paths_error");
  partial = &registry->counter("engine.paths_partial");
  instructions = &registry->counter("engine.instructions");
  worklist = &registry->gauge("engine.worklist_depth");
  per_worker.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    per_worker.push_back(&registry->counter(
        "engine.worker" + std::to_string(i) + ".committed"));
}

void ProgressInstruments::commit(const PathRecord& record, unsigned worker) {
  if (committed == nullptr) return;
  committed->add();
  instructions->add(record.instructions);
  switch (record.end) {
    case PathEnd::Completed:
      completed->add();
      break;
    case PathEnd::Error:
      error->add();
      partial->add();
      break;
    case PathEnd::Infeasible:
    case PathEnd::SolverLimit:
    case PathEnd::Budget:
      partial->add();
      break;
  }
  if (worker < per_worker.size()) per_worker[worker]->add();
}

void ProgressInstruments::depth(std::size_t n) {
  if (worklist == nullptr) return;
  const auto depth = static_cast<std::int64_t>(n);
  worklist->set(depth);
  worklist->sampleMax(depth);
}

void finalizeRecordTags(PathRecord& record,
                        const std::vector<std::string>& state_tags,
                        const EngineOptions& options) {
  record.tags = state_tags;
  if (options.path_tagger) {
    std::vector<std::string> derived = options.path_tagger(record);
    record.tags.insert(record.tags.end(),
                       std::make_move_iterator(derived.begin()),
                       std::make_move_iterator(derived.end()));
  }
  std::sort(record.tags.begin(), record.tags.end());
  record.tags.erase(std::unique(record.tags.begin(), record.tags.end()),
                    record.tags.end());
}

obs::TraceEvent makePathEndEvent(
    std::uint64_t path_id, const PathRecord& record, std::uint64_t forks,
    std::uint64_t solver_checks,
    const std::vector<std::pair<std::string, std::uint64_t>>& times) {
  obs::TraceEvent ev("path_end");
  ev.num("path", path_id)
      .str("end", pathEndName(record.end))
      .num("instr", record.instructions)
      .num("decisions", static_cast<std::uint64_t>(record.decisions.size()))
      .num("forks", forks)
      .num("solver_checks", solver_checks)
      .boolean("has_test", record.has_test)
      .str("msg", record.message);
  // Deterministic enrichment for the offline analyzer: workload tags and
  // the solved test vector ("name=width:hexvalue", space-joined —
  // canonical solver models make this byte-identical across jobs).
  if (!record.tags.empty()) {
    std::string joined;
    for (const std::string& t : record.tags) {
      if (!joined.empty()) joined += ',';
      joined += t;
    }
    ev.str("tags", joined);
  }
  if (record.has_test) {
    std::string test;
    char buf[32];
    for (const TestValue& v : record.test.values) {
      if (!test.empty()) test += ' ';
      std::snprintf(buf, sizeof buf, "=%u:%" PRIx64, v.width, v.value);
      test += v.name;
      test += buf;
    }
    ev.str("test", test);
  }
  // Timing-dependent attribution fields (t_ prefix per the trace
  // contract): SAT solve time plus any program-side accumulators.
  ev.num("t_solver_us", record.solver_us);
  for (const auto& [key, us] : times) ev.num("t_" + key + "_us", us);
  return ev;
}

}  // namespace detail

const PathRecord* EngineReport::firstError() const {
  for (const PathRecord& p : paths)
    if (p.end == PathEnd::Error) return &p;
  return nullptr;
}

std::string reportToJson(const EngineReport& report) {
  obs::JsonWriter w;
  w.beginObject();
  // Deterministic counters (see the contract in engine.hpp).
  w.field("completed_paths", report.completed_paths);
  w.field("error_paths", report.error_paths);
  w.field("infeasible_paths", report.infeasible_paths);
  w.field("limited_paths", report.limited_paths);
  w.field("unexplored_forks", report.unexplored_forks);
  w.field("partial_paths", report.partialPaths());
  w.field("total_paths", report.totalPaths());
  w.field("instructions", report.instructions);
  w.field("test_vectors", report.test_vectors);
  w.field("branches", report.branches);
  w.field("const_decided", report.const_decided);
  w.field("knownbits_decided", report.knownbits_decided);
  w.field("solver_decided", report.solver_decided);
  w.field("solver_checks", report.solver_checks);
  w.field("stopped_early", report.stopped_early);
  // Timing-dependent fields, grouped so consumers diffing reports across
  // worker counts can drop them wholesale.
  w.key("timing").beginObject();
  w.field("seconds", report.seconds);
  w.field("qcache_hits", report.qcache_hits);
  w.field("qcache_misses", report.qcache_misses);
  w.endObject();
  w.endObject();
  return w.str();
}

Engine::Engine(expr::ExprBuilder& eb, EngineOptions options)
    : eb_(eb), options_(options) {}

Engine::WorkItem Engine::popNext() {
  assert(!worklist_.empty());
  return detail::popNextItem(worklist_, options_.searcher, rng_state_);
}

EngineReport Engine::run(const std::function<void(ExecState&)>& program) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  EngineReport report;
  rng_state_ = options_.random_seed == 0 ? 1 : options_.random_seed;

  worklist_.clear();
  worklist_.push_back(WorkItem{0, {}});
  std::uint64_t next_path_id = 1;

  // Run-scoped solver acceleration: one canonical hasher (the
  // single-threaded engine shares one builder across paths) and a
  // counterexample cache reused by every path of this run. The
  // exact-hash QueryCache stays a parallel-engine feature — the cex
  // cache covers cross-path reuse here, and report.qcache_* stays 0.
  solver::CanonicalHasher run_hasher;
  solver::CexCache run_cex;
  if (options_.metrics) run_cex.attachMetrics(*options_.metrics);

  ExecState::Limits limits{options_.max_decisions_per_path,
                           options_.solver_max_conflicts,
                           options_.take_true_first,
                           options_.use_known_bits,
                           nullptr,
                           &run_hasher,
                           options_.metrics,
                           options_.telemetry,
                           options_.profiler,
                           options_.trace != nullptr,
                           &run_cex,
                           options_.solver_opt};

  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  double next_heartbeat = options_.heartbeat_seconds;
  detail::ProgressInstruments progress(options_.metrics, 1);

  RVSYM_TRACE(options_.trace,
              obs::TraceEvent("run_start")
                  .str("searcher", detail::searcherName(options_.searcher))
                  .num("jobs", std::uint64_t{1})
                  .num("trace_version",
                       static_cast<std::uint64_t>(obs::kTraceVersion)));

  while (!worklist_.empty()) {
    if (options_.max_paths != 0 &&
        report.totalPaths() - report.unexplored_forks >= options_.max_paths) {
      report.stopped_early = true;
      break;
    }
    if (options_.max_seconds != 0 && elapsed() >= options_.max_seconds) {
      report.stopped_early = true;
      break;
    }
    if (options_.max_instructions != 0 &&
        report.instructions >= options_.max_instructions) {
      report.stopped_early = true;
      break;
    }
    if (options_.heartbeat_seconds > 0 && elapsed() >= next_heartbeat) {
      detail::emitHeartbeat(report, elapsed(), worklist_.size(),
                            options_.heartbeat_annotator
                                ? options_.heartbeat_annotator(report)
                                : std::string(),
                            options_.metrics);
      next_heartbeat = elapsed() + options_.heartbeat_seconds;
    }

    progress.depth(worklist_.size());

    const WorkItem item = popNext();
    RVSYM_TRACE(options_.trace,
                obs::TraceEvent("schedule")
                    .num("path", item.id)
                    .num("depth", static_cast<std::uint64_t>(
                                      item.prefix.size())));

    const obs::PhaseTimer path_phase(options_.profiler, "path");
    ExecState state(eb_, item.prefix, limits);
    PathRecord record;
    obs::flightrec::busyBegin();
    try {
      program(state);
      record.end = PathEnd::Completed;
    } catch (const PathTerminated& t) {
      record.end = t.end;
      record.message = t.message;
    } catch (...) {
      obs::flightrec::busyEnd();
      throw;
    }
    obs::flightrec::busyEnd();
    record.instructions = state.stats().instructions;
    record.decisions = state.decisions();
    record.solver_us = state.solverStats().solve_us;

    // Flush events the program buffered while executing this path (e.g.
    // voter verdicts), stamped with the path id.
    if (options_.trace != nullptr) {
      for (obs::TraceEvent& ev : state.traceEvents()) {
        ev.fields.insert(ev.fields.begin(),
                         {"path", std::to_string(item.id)});
        options_.trace->emit(ev);
      }
    }

    // Schedule forks discovered on this path (even if it later aborted:
    // each fork was feasible at discovery time).
    for (const std::vector<bool>& alt : state.pendingForks()) {
      const std::uint64_t child_id = next_path_id++;
      RVSYM_TRACE(options_.trace,
                  obs::TraceEvent("fork")
                      .num("path", child_id)
                      .num("parent", item.id)
                      .num("depth", static_cast<std::uint64_t>(alt.size())));
      worklist_.push_back(WorkItem{child_id, alt});
    }

    // Aggregate.
    report.instructions += state.stats().instructions;
    report.branches += state.stats().branches;
    report.const_decided += state.stats().const_decided;
    report.knownbits_decided += state.stats().knownbits_decided;
    report.solver_decided += state.stats().solver_decided;
    report.solver_checks += state.solverStats().checks;

    switch (record.end) {
      case PathEnd::Completed: ++report.completed_paths; break;
      case PathEnd::Error: ++report.error_paths; break;
      case PathEnd::Infeasible: ++report.infeasible_paths; break;
      case PathEnd::SolverLimit:
      case PathEnd::Budget: ++report.limited_paths; break;
    }

    if (options_.collect_test_vectors &&
        (record.end == PathEnd::Completed || record.end == PathEnd::Error)) {
      if (std::optional<TestVector> tv = state.solveTestVector()) {
        record.test = std::move(*tv);
        record.has_test = true;
        ++report.test_vectors;
      }
    }

    detail::finalizeRecordTags(record, state.tags(), options_);
    RVSYM_TRACE(options_.trace,
                detail::makePathEndEvent(item.id, record, state.stats().forks,
                                         state.solverStats().checks,
                                         state.times()));
    progress.commit(record);
    obs::flightrec::emit(obs::flightrec::EventKind::PathCommit, item.id,
                         static_cast<std::uint64_t>(record.end),
                         state.stats().instructions,
                         pathEndName(record.end));

    const bool is_error = record.end == PathEnd::Error;
    const bool store =
        is_error || options_.max_stored_paths == 0 ||
        report.paths.size() < options_.max_stored_paths;
    if (store) report.paths.push_back(std::move(record));

    if (is_error && options_.stop_on_error) {
      report.stopped_early = true;
      break;
    }
  }

  report.unexplored_forks = worklist_.size();
  report.seconds = elapsed();
  RVSYM_TRACE(options_.trace,
              obs::TraceEvent("run_end")
                  .num("paths", report.totalPaths())
                  .num("completed", report.completed_paths)
                  .num("errors", report.error_paths)
                  .num("unexplored", report.unexplored_forks)
                  .num("instr", report.instructions)
                  .num("t_s", report.seconds));
  if (options_.trace) options_.trace->flush();
  return report;
}

}  // namespace rvsym::symex
