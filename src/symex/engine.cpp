#include "symex/engine.hpp"

#include <cassert>
#include <chrono>

namespace rvsym::symex {

const PathRecord* EngineReport::firstError() const {
  for (const PathRecord& p : paths)
    if (p.end == PathEnd::Error) return &p;
  return nullptr;
}

Engine::Engine(expr::ExprBuilder& eb, EngineOptions options)
    : eb_(eb), options_(options) {}

std::vector<bool> Engine::popNext() {
  assert(!worklist_.empty());
  return detail::popNextItem(worklist_, options_.searcher, rng_state_);
}

EngineReport Engine::run(const std::function<void(ExecState&)>& program) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  EngineReport report;
  rng_state_ = options_.random_seed == 0 ? 1 : options_.random_seed;

  worklist_.clear();
  worklist_.push_back({});

  const ExecState::Limits limits{options_.max_decisions_per_path,
                                 options_.solver_max_conflicts,
                                 options_.take_true_first,
                                 options_.use_known_bits};

  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  while (!worklist_.empty()) {
    if (options_.max_paths != 0 &&
        report.totalPaths() - report.unexplored_forks >= options_.max_paths) {
      report.stopped_early = true;
      break;
    }
    if (options_.max_seconds != 0 && elapsed() >= options_.max_seconds) {
      report.stopped_early = true;
      break;
    }
    if (options_.max_instructions != 0 &&
        report.instructions >= options_.max_instructions) {
      report.stopped_early = true;
      break;
    }

    ExecState state(eb_, popNext(), limits);
    PathRecord record;
    try {
      program(state);
      record.end = PathEnd::Completed;
    } catch (const PathTerminated& t) {
      record.end = t.end;
      record.message = t.message;
    }
    record.instructions = state.stats().instructions;
    record.decisions = state.decisions();

    // Schedule forks discovered on this path (even if it later aborted:
    // each fork was feasible at discovery time).
    for (const std::vector<bool>& alt : state.pendingForks())
      worklist_.push_back(alt);

    // Aggregate.
    report.instructions += state.stats().instructions;
    report.branches += state.stats().branches;
    report.const_decided += state.stats().const_decided;
    report.knownbits_decided += state.stats().knownbits_decided;
    report.solver_decided += state.stats().solver_decided;
    report.solver_checks += state.solverStats().checks;

    switch (record.end) {
      case PathEnd::Completed: ++report.completed_paths; break;
      case PathEnd::Error: ++report.error_paths; break;
      case PathEnd::Infeasible: ++report.infeasible_paths; break;
      case PathEnd::SolverLimit:
      case PathEnd::Budget: ++report.limited_paths; break;
    }

    if (options_.collect_test_vectors &&
        (record.end == PathEnd::Completed || record.end == PathEnd::Error)) {
      if (std::optional<TestVector> tv = state.solveTestVector()) {
        record.test = std::move(*tv);
        record.has_test = true;
        ++report.test_vectors;
      }
    }

    const bool is_error = record.end == PathEnd::Error;
    const bool store =
        is_error || options_.max_stored_paths == 0 ||
        report.paths.size() < options_.max_stored_paths;
    if (store) report.paths.push_back(std::move(record));

    if (is_error && options_.stop_on_error) {
      report.stopped_early = true;
      break;
    }
  }

  report.unexplored_forks = worklist_.size();
  report.seconds = elapsed();
  return report;
}

}  // namespace rvsym::symex
