// ParallelEngine — multi-threaded path exploration with sequential
// semantics.
//
// The replay-based forking design makes every path an independent
// re-execution from reset, so paths are embarrassingly parallel. The
// engine exploits that with *speculative execution under ordered
// commit*:
//
//  * N workers, each owning a private ExprBuilder / PathSolver / DUT
//    harness (the program is a factory: it is instantiated once per
//    worker against the worker's builder);
//  * a shared worklist of decision prefixes. Workers claim prefixes the
//    committer has not popped yet (DFS workers steal from the back, BFS
//    from the front) and execute them speculatively;
//  * a single committer (the caller's thread, which doubles as worker
//    0) pops prefixes in exactly the order the sequential Engine would,
//    commits finished results in that order — pushing newly discovered
//    forks, aggregating counters and enforcing the path / instruction /
//    time budgets — and executes any popped prefix no worker has
//    claimed yet.
//
// Because a path's outcome is a pure function of its decision prefix
// (canonical solver models, builder-independent expressions), a
// speculatively executed path commits the same result the committer
// would have produced — so for any worker count the report is
// byte-identical to the sequential Engine's, except for `seconds` and
// the cache-traffic counters. In an exhaustive run every worklist entry
// is eventually committed, so speculation wastes no work; under
// stop-on-error or a budget, at most `jobs` in-flight paths are
// discarded.
//
// The cross-path query cache (solver/querycache.hpp) is shared by all
// workers: fork-feasibility verdicts are keyed by a canonical
// structural hash of (constraint set, assumption), so the decoder
// cascade that every path replays is solved once, fleet-wide. Verdicts
// are semantic facts — hits change which solve calls run, never their
// answers — so determinism is unaffected. The cache is disabled
// automatically when a solver conflict budget is set (a budgeted
// Unknown is not a semantic fact).
#pragma once

#include <cstdint>
#include <functional>

#include "expr/builder.hpp"
#include "solver/querycache.hpp"
#include "symex/engine.hpp"

namespace rvsym::symex {

/// Per-worker execution context handed to the program factory.
struct WorkerContext {
  unsigned worker_id = 0;      ///< 0 = the committer thread
  expr::ExprBuilder& builder;  ///< worker-private; build the DUT against it
};

using PathProgram = std::function<void(ExecState&)>;

/// Instantiates one worker's path program (ISS + RTL co-sim harness,
/// synthetic test program, ...). Called once per worker, against the
/// worker's private builder, before exploration starts. The returned
/// callable runs one path and must depend only on the prefix replayed
/// through ExecState (any state it touches must be per-worker).
using ProgramFactory = std::function<PathProgram(WorkerContext&)>;

struct ParallelEngineOptions : EngineOptions {
  /// Worker count (committer included). 1 = sequential exploration on
  /// the calling thread, byte-identical to Engine::run.
  unsigned jobs = 1;
  /// Cross-path query cache (shared across workers). Auto-disabled when
  /// solver_max_conflicts != 0.
  bool enable_query_cache = true;
  /// Lock shards of the query cache.
  unsigned cache_shards = 16;
  /// Externally owned cache shared beyond this run (the mutation
  /// campaign hands one cache to every per-mutant engine). Verdicts are
  /// semantic facts keyed by canonical structural hashes, so reuse
  /// across runs changes which solves execute, never their answers.
  /// When set it replaces the run-private cache (enable_query_cache and
  /// cache_shards are ignored; a solver conflict budget still disables
  /// caching) and report.qcache_* counts this run's committed traffic
  /// only — summed from the per-path counters each worker's solver
  /// observed, so concurrent runs sharing the cache never leak their
  /// lookups into each other's reports.
  solver::QueryCache* shared_cache = nullptr;
  /// Externally owned counterexample/subsumption cache shared beyond
  /// this run (the mutation campaign spans one across every hunt —
  /// mutants replay near-identical decode cascades, so model and core
  /// reuse is high). Same soundness argument as shared_cache: answers
  /// are semantic facts. When null and solver_opt.cex_cache is on, the
  /// run owns a private store shared across its workers. Auto-disabled
  /// when solver_max_conflicts != 0.
  solver::CexCache* shared_cex_cache = nullptr;
};

class ParallelEngine {
 public:
  explicit ParallelEngine(ParallelEngineOptions options);

  /// Explores every path of the per-worker programs built by `factory`.
  /// Non-PathTerminated exceptions thrown by a program are re-thrown on
  /// the calling thread.
  EngineReport run(const ProgramFactory& factory);

  /// Convenience wrapper for programs without per-worker state: every
  /// worker shares the same callable (it must then be thread-safe and
  /// builder-agnostic — prefer a real factory for anything stateful).
  EngineReport run(const PathProgram& program);

  const ParallelEngineOptions& options() const { return options_; }

 private:
  ParallelEngineOptions options_;
};

}  // namespace rvsym::symex
