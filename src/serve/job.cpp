#include "serve/job.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "mut/space.hpp"
#include "obs/json.hpp"

namespace rvsym::serve {

namespace {

namespace fs = std::filesystem;

void setError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

void writeStringArray(obs::JsonWriter& w, const char* key,
                      const std::vector<std::string>& items) {
  if (items.empty()) return;
  w.key(key).beginArray();
  for (const std::string& s : items) w.value(s);
  w.endArray();
}

bool readStringArray(const obs::analyze::JsonValue& v, const char* key,
                     std::vector<std::string>& out, std::string* error) {
  const obs::analyze::JsonValue* arr = v.find(key);
  if (!arr) return true;
  if (!arr->isArray()) {
    setError(error, std::string("spec field '") + key + "' is not an array");
    return false;
  }
  for (const auto& item : arr->items()) {
    if (!item.isString()) {
      setError(error, std::string("spec field '") + key +
                          "' holds a non-string element");
      return false;
    }
    out.push_back(item.asString());
  }
  return true;
}

bool parseKindName(const std::string& name, mut::MutantKind& kind) {
  for (mut::MutantKind k :
       {mut::MutantKind::DecodeBit, mut::MutantKind::StuckBit,
        mut::MutantKind::BranchSwap, mut::MutantKind::MemFault,
        mut::MutantKind::CtrlFlag}) {
    if (name == mut::mutantKindName(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

bool parseOpName(const std::string& name, rv32::Opcode& op) {
  for (std::size_t i = 1; i <= rv32::kLegalOpcodeCount; ++i) {
    const auto candidate = static_cast<rv32::Opcode>(i);
    if (name == rv32::opcodeName(candidate)) {
      op = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string JobSpec::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.field("kind", kind);
  writeStringArray(w, "mutant_ids", mutant_ids);
  writeStringArray(w, "kinds", kinds);
  writeStringArray(w, "ops", ops);
  if (!corpus_dir.empty()) w.field("corpus_dir", corpus_dir);
  w.field("min_instr_limit", min_instr_limit);
  w.field("max_instr_limit", max_instr_limit);
  w.field("max_paths_per_hunt", max_paths_per_hunt);
  w.field("max_seconds_per_hunt", max_seconds_per_hunt);
  w.field("num_symbolic_regs", num_symbolic_regs);
  w.field("scenario", scenario);
  w.field("solver_opt", solver_opt);
  if (max_shards != 0) w.field("max_shards", max_shards);
  w.endObject();
  return w.str();
}

std::optional<JobSpec> JobSpec::fromJson(const obs::analyze::JsonValue& v,
                                         std::string* error) {
  if (!v.isObject()) {
    setError(error, "spec is not a JSON object");
    return std::nullopt;
  }
  JobSpec spec;
  spec.kind = v.getString("kind").value_or("mutate");
  if (spec.kind != "mutate" && spec.kind != "verify" &&
      spec.kind != "replay") {
    setError(error, "unknown job kind '" + spec.kind +
                        "' (expected mutate, verify or replay)");
    return std::nullopt;
  }
  if (!readStringArray(v, "mutant_ids", spec.mutant_ids, error) ||
      !readStringArray(v, "kinds", spec.kinds, error) ||
      !readStringArray(v, "ops", spec.ops, error))
    return std::nullopt;
  spec.corpus_dir = v.getString("corpus_dir").value_or("");
  spec.min_instr_limit = static_cast<unsigned>(
      v.getU64("min_instr_limit").value_or(spec.min_instr_limit));
  spec.max_instr_limit = static_cast<unsigned>(
      v.getU64("max_instr_limit").value_or(spec.max_instr_limit));
  spec.max_paths_per_hunt =
      v.getU64("max_paths_per_hunt").value_or(spec.max_paths_per_hunt);
  spec.max_seconds_per_hunt =
      v.getNumber("max_seconds_per_hunt").value_or(spec.max_seconds_per_hunt);
  spec.num_symbolic_regs = static_cast<unsigned>(
      v.getU64("num_symbolic_regs").value_or(spec.num_symbolic_regs));
  spec.scenario = v.getString("scenario").value_or(spec.scenario);
  spec.solver_opt = v.getString("solver_opt").value_or(spec.solver_opt);
  spec.max_shards =
      static_cast<unsigned>(v.getU64("max_shards").value_or(0));
  if (spec.min_instr_limit == 0 ||
      spec.min_instr_limit > spec.max_instr_limit) {
    setError(error, "bad instruction limit range");
    return std::nullopt;
  }
  if (spec.kind == "replay" && spec.corpus_dir.empty()) {
    setError(error, "replay job needs corpus_dir");
    return std::nullopt;
  }
  return spec;
}

std::optional<JobSpec> JobSpec::fromJsonText(const std::string& text,
                                             std::string* error) {
  const auto v = obs::analyze::parseJson(text, error);
  if (!v) return std::nullopt;
  return fromJson(*v, error);
}

std::optional<std::vector<std::string>> enumerateUnits(const JobSpec& spec,
                                                       std::string* error) {
  std::vector<std::string> units;
  if (spec.kind == "verify") {
    for (const auto& pm : mut::paperMutants()) units.push_back(pm.paper_id);
    return units;
  }
  if (spec.kind == "replay") {
    std::error_code ec;
    for (const auto& ent : fs::directory_iterator(spec.corpus_dir, ec)) {
      if (!ent.is_regular_file()) continue;
      if (ent.path().extension() == ".query")
        units.push_back(ent.path().filename().string());
    }
    if (ec) {
      setError(error, "cannot read corpus dir " + spec.corpus_dir + ": " +
                          ec.message());
      return std::nullopt;
    }
    std::sort(units.begin(), units.end());
    if (units.empty()) {
      setError(error, "no .query files in " + spec.corpus_dir);
      return std::nullopt;
    }
    return units;
  }
  // mutate
  if (!spec.mutant_ids.empty()) {
    for (const std::string& id : spec.mutant_ids) {
      try {
        (void)mut::mutantById(id);
      } catch (const std::out_of_range&) {
        setError(error, "unknown mutant id '" + id + "'");
        return std::nullopt;
      }
      units.push_back(id);
    }
    return units;
  }
  mut::SpaceFilter filter;
  for (const std::string& name : spec.kinds) {
    mut::MutantKind k;
    if (!parseKindName(name, k)) {
      setError(error, "unknown mutant kind '" + name + "'");
      return std::nullopt;
    }
    filter.kinds.push_back(k);
  }
  for (const std::string& name : spec.ops) {
    rv32::Opcode op;
    if (!parseOpName(name, op)) {
      setError(error, "unknown opcode '" + name + "'");
      return std::nullopt;
    }
    filter.ops.push_back(op);
  }
  for (const mut::Mutant& m : mut::enumerateSpace(filter))
    units.push_back(m.id());
  if (units.empty()) {
    setError(error, "mutant selection is empty");
    return std::nullopt;
  }
  return units;
}

}  // namespace rvsym::serve
