// Job specifications for rvsym-serve.
//
// A job is the unit a client submits: a mutation campaign slice
// ("mutate"), a Table II paper-mutant verify sweep ("verify"), or a
// slow-query corpus replay ("replay"). The daemon expands a spec into
// a deterministic, ordered list of *units* — individual mutant ids or
// corpus file names — and schedules those across workers in shards.
// Daemon and worker both derive the unit list from the same spec, so a
// restarted daemon re-enumerates identically and resumes by skipping
// units whose verdicts the job journal already holds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/analyze/json_reader.hpp"

namespace rvsym::serve {

struct JobSpec {
  /// "mutate", "verify" or "replay".
  std::string kind = "mutate";

  // Mutate selection: explicit ids win over the kind/op filter.
  std::vector<std::string> mutant_ids;
  std::vector<std::string> kinds;  ///< "dec", "stuck", "swap", "mem", "flag"
  std::vector<std::string> ops;    ///< rv32 opcode names

  std::string corpus_dir;  ///< replay: directory of .query files

  // Judge budgets (mutate/verify; mirrors CampaignOptions).
  unsigned min_instr_limit = 1;
  unsigned max_instr_limit = 2;
  std::uint64_t max_paths_per_hunt = 200000;
  double max_seconds_per_hunt = 60;
  unsigned num_symbolic_regs = 2;
  std::string scenario = "rv32i";
  std::string solver_opt = "all";  ///< layer spec (DESIGN.md §10)

  /// Per-job quota: max shards of this job in flight at once
  /// (0 = no cap). Lets a bulk campaign coexist with small jobs.
  unsigned max_shards = 0;

  /// Rendered as one JSON object (stable field order).
  std::string toJson() const;
  static std::optional<JobSpec> fromJson(const obs::analyze::JsonValue& v,
                                         std::string* error = nullptr);
  static std::optional<JobSpec> fromJsonText(const std::string& text,
                                             std::string* error = nullptr);
};

/// Expands a spec into its ordered unit list: mutant ids (mutate),
/// paper ids E0..E9 (verify), or sorted corpus file names (replay).
/// nullopt on an invalid spec (unknown mutant id / kind / opcode,
/// unreadable corpus dir, empty selection).
std::optional<std::vector<std::string>> enumerateUnits(
    const JobSpec& spec, std::string* error = nullptr);

}  // namespace rvsym::serve
