// Thin client-side helpers over the serve protocol: connect, one
// request/response round trip, and typed wrappers for the common
// commands the CLI and rvsym-top use.
#pragma once

#include <optional>
#include <string>

#include "serve/proto.hpp"

namespace rvsym::serve {

/// Sends one JSON request frame and reads one response frame.
std::optional<std::string> request(int fd, const std::string& json,
                                   std::string* error = nullptr);

/// connect + one round trip + close. For one-shot commands.
std::optional<std::string> requestOnce(const Endpoint& ep,
                                       const std::string& json,
                                       std::string* error = nullptr);

}  // namespace rvsym::serve
