#include "serve/client.hpp"

#include <unistd.h>

namespace rvsym::serve {

std::optional<std::string> request(int fd, const std::string& json,
                                   std::string* error) {
  if (!writeFrame(fd, json, error)) return std::nullopt;
  auto reply = readFrame(fd, error);
  if (!reply && error && error->empty())
    *error = "daemon closed the connection";
  return reply;
}

std::optional<std::string> requestOnce(const Endpoint& ep,
                                       const std::string& json,
                                       std::string* error) {
  const int fd = connectTo(ep, error);
  if (fd < 0) return std::nullopt;
  auto reply = request(fd, json, error);
  ::close(fd);
  return reply;
}

}  // namespace rvsym::serve
