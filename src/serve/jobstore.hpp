// JobStore — the daemon's persistent job-state store.
//
// Generalizes the mutation-campaign resumable journal (PR 4) into the
// service's source of truth: every job gets one append-only JSONL file
// under <state_dir>/jobs/<id>.jsonl —
//
//   {"rvsym_serve_job":1,"id":"j3","spec":{...}}      header
//   {"ev":"unit","unit":"dec:slli:b25",...}           one per verdict
//   {"ev":"final","status":"done",...}                terminal record
//
// The daemon appends a unit line the moment a worker reports it and the
// final line when the job reaches a terminal state, so a kill -9 at any
// instant loses at most the line being written. On restart loadAll()
// replays every journal through the shared JSONL reader: done units are
// skipped on resubmit, a torn final line is dropped (and that unit
// re-judged), and an unterminated-but-parsable tail is completed with
// its newline — the same two-case tail repair the campaign runner does.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace rvsym::serve {

struct LoadedJob {
  std::string id;
  JobSpec spec;
  /// unit name -> raw unit-record JSON line (first verdict wins).
  std::map<std::string, std::string> unit_records;
  bool finished = false;
  std::string final_record;  ///< raw final line; empty while running
  std::string repair_note;   ///< non-empty if the tail needed repair
};

class JobStore {
 public:
  /// Creates <state_dir>/jobs/ if needed.
  explicit JobStore(std::string state_dir);

  /// Writes the header line of a fresh journal. False if the id exists.
  bool createJob(const std::string& id, const JobSpec& spec,
                 std::string* error = nullptr);

  /// Appends one pre-rendered JSON line (unit or final record), flushed
  /// before returning so a daemon crash right after loses nothing.
  bool appendLine(const std::string& id, const std::string& json_line);

  /// Replays every journal in the store, repairing torn tails in place.
  /// Journals that fail to parse as serve jobs are skipped with a note
  /// in `warnings`.
  std::vector<LoadedJob> loadAll(std::vector<std::string>* warnings = nullptr);

  /// Smallest "j<N>" not used by any existing journal.
  std::string nextJobId() const;

  std::string journalPath(const std::string& id) const;
  const std::string& stateDir() const { return state_dir_; }

 private:
  std::string state_dir_;
  std::string jobs_dir_;
};

}  // namespace rvsym::serve
