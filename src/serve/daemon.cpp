#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "obs/bundle.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"
#include "serve/jobstore.hpp"
#include "serve/worker.hpp"
#include "solver/cachestore.hpp"
#include "solver/options.hpp"

namespace rvsym::serve {

namespace {

using obs::JsonWriter;
using obs::analyze::JsonValue;
using obs::analyze::parseJson;

std::string okReply(const std::function<void(JsonWriter&)>& fill = {}) {
  JsonWriter w;
  w.beginObject();
  w.field("ok", true);
  if (fill) fill(w);
  w.endObject();
  return w.str();
}

std::string errorReply(const std::string& message) {
  JsonWriter w;
  w.beginObject();
  w.field("ok", false);
  w.field("error", message);
  w.endObject();
  return w.str();
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(DaemonOptions opts)
      : options(std::move(opts)), store(options.state_dir),
        sched(options.sched) {}

  DaemonOptions options;
  JobStore store;
  Scheduler sched;
  int listen_fd = -1;
  bool draining = false;
  std::uint64_t status_seq = 0;
  std::chrono::steady_clock::time_point start_time;
  std::chrono::steady_clock::time_point last_activity;
  bool compacted_since_idle = false;
  unsigned worker_seq = 0;

  struct Client {
    int fd = -1;
    FrameDecoder dec;
  };

  struct Worker {
    int fd = -1;
    FrameDecoder dec;
    std::string id;
    pid_t pid = -1;       // process mode
    std::thread thread;   // thread mode
    bool ready = false;   ///< hello received
    bool idle = false;
  };

  struct JobRec {
    JobSpec spec;
    std::uint64_t units_total = 0;
    std::map<std::string, std::string> unit_records;  ///< unit -> raw line
    bool finished = false;
    std::string status;        ///< done / failed / cancelled
    std::string final_record;  ///< raw final line
  };

  std::map<int, Client> clients;
  std::map<int, std::unique_ptr<Worker>> workers;
  std::map<std::string, JobRec> jobs;
  std::vector<std::pair<int, std::string>> watchers;  ///< client fd -> job

  // ---- lifecycle --------------------------------------------------------

  bool init(std::string* error) {
    std::signal(SIGPIPE, SIG_IGN);  // dead peers are poll events, not death
    start_time = last_activity = std::chrono::steady_clock::now();
    listen_fd = listenOn(options.endpoint, error);
    if (listen_fd < 0) return false;

    // Resume: every unfinished journal is re-admitted with its judged
    // units skipped. Unit verdicts are deterministic, so the resumed
    // job converges to the verdict set of an uninterrupted run.
    std::vector<std::string> warnings;
    for (LoadedJob& loaded : store.loadAll(&warnings)) {
      JobRec rec;
      rec.spec = loaded.spec;
      rec.unit_records = std::move(loaded.unit_records);
      rec.finished = loaded.finished;
      rec.final_record = loaded.final_record;
      rec.units_total = rec.unit_records.size();
      if (rec.finished) {
        if (const auto v = parseJson(rec.final_record))
          rec.status = v->getString("status").value_or("done");
        jobs.emplace(loaded.id, std::move(rec));
        continue;
      }
      std::string err;
      const auto units = enumerateUnits(rec.spec, &err);
      if (!units) {
        jobs.emplace(loaded.id, std::move(rec));
        finalizeJob(loaded.id, "failed",
                    "cannot re-enumerate units: " + err);
        continue;
      }
      std::vector<std::string> remaining;
      for (const std::string& u : *units)
        if (!rec.unit_records.count(u)) remaining.push_back(u);
      rec.units_total = units->size();
      const std::uint64_t done = units->size() - remaining.size();
      jobs.emplace(loaded.id, std::move(rec));
      sched.submit(loaded.id, jobs[loaded.id].spec.max_shards,
                   std::move(remaining), done);
      logf("resumed %s: %llu/%llu units already judged", loaded.id.c_str(),
           static_cast<unsigned long long>(done),
           static_cast<unsigned long long>(units->size()));
      maybeFinalize(loaded.id);
    }
    for (const std::string& wmsg : warnings)
      std::fprintf(stderr, "rvsym-serve: %s\n", wmsg.c_str());

    for (unsigned i = 0; i < std::max(1u, options.workers); ++i)
      if (!spawnWorker(error)) return false;
    return true;
  }

  void logf(const char* fmt, ...) {
    if (!options.verbose) return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "rvsym-serve: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  // ---- workers ----------------------------------------------------------

  bool spawnWorker(std::string* error) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      if (error) *error = "socketpair failed";
      return false;
    }
    auto w = std::make_unique<Worker>();
    w->id = "w" + std::to_string(worker_seq++);
    w->fd = sv[0];

    WorkerConfig cfg;
    cfg.cache_dir = options.cache_dir;
    cfg.tag = w->id;
    cfg.engine_jobs = options.engine_jobs;
    // The fail-after hook arms only the first worker ever spawned, so a
    // respawn after the simulated crash judges normally instead of
    // crash-looping.
    if (options.thread_workers && w->id == "w0")
      cfg.fail_after_units = options.worker_fail_after_units;

    if (options.thread_workers) {
      const int worker_fd = sv[1];
      w->thread = std::thread([worker_fd, cfg] {
        workerMain(worker_fd, cfg);
        ::close(worker_fd);
      });
    } else {
      cfg.crash_dir = options.crash_dir;
      const pid_t pid = ::fork();
      if (pid < 0) {
        if (error) *error = "fork failed";
        ::close(sv[0]);
        ::close(sv[1]);
        return false;
      }
      if (pid == 0) {
        // Child: drop every daemon fd except the worker socket.
        ::close(sv[0]);
        ::close(listen_fd);
        for (const auto& [cfd, c] : clients) ::close(cfd);
        for (const auto& [wfd, other] : workers) ::close(wfd);
        const int code = workerMain(sv[1], cfg);
        std::_Exit(code);
      }
      w->pid = pid;
      ::close(sv[1]);
    }
    logf("spawned worker %s", w->id.c_str());
    workers.emplace(sv[0], std::move(w));
    return true;
  }

  void removeWorker(int fd, bool respawn) {
    const auto it = workers.find(fd);
    if (it == workers.end()) return;
    std::unique_ptr<Worker> w = std::move(it->second);
    workers.erase(it);
    ::close(fd);
    for (const std::string& job_id : sched.onWorkerGone(w->id)) {
      logf("worker %s died holding a shard of %s", w->id.c_str(),
           job_id.c_str());
      finalizeJob(job_id, "failed",
                  "worker " + w->id + " died while judging");
    }
    if (w->pid > 0) {
      int st = 0;
      ::waitpid(w->pid, &st, 0);
    }
    if (w->thread.joinable()) w->thread.join();
    if (respawn && !draining) {
      std::string err;
      if (!spawnWorker(&err))
        std::fprintf(stderr, "rvsym-serve: respawn failed: %s\n",
                     err.c_str());
    }
    dispatch();
  }

  void dispatch() {
    for (auto& [fd, w] : workers) {
      if (!w->ready || !w->idle) continue;
      const auto shard = sched.nextShard(w->id);
      if (!shard) continue;
      const JobRec& rec = jobs[shard->job_id];
      JsonWriter msg;
      msg.beginObject();
      msg.field("cmd", "shard");
      msg.field("job", shard->job_id);
      msg.field("shard", std::uint64_t{shard->index});
      msg.key("spec").rawValue(rec.spec.toJson());
      msg.key("units").beginArray();
      for (const std::string& u : shard->units) msg.value(u);
      msg.endArray();
      msg.endObject();
      if (!writeFrame(fd, msg.str())) continue;  // poll will reap it
      w->idle = false;
      touch();
    }
  }

  void onWorkerFrame(Worker& w, const std::string& payload) {
    const auto v = parseJson(payload);
    if (!v) return;
    const std::string ev = v->getString("ev").value_or("");
    if (ev == "hello") {
      w.ready = true;
      w.idle = true;
      dispatch();
      return;
    }
    if (ev == "unit") {
      const std::string job_id = v->getString("job").value_or("");
      const std::string unit = v->getString("unit").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end() || unit.empty()) return;
      // Journal first, memory second: after a kill -9 the journal is
      // the truth the restart resumes from.
      store.appendLine(job_id, payload);
      job->second.unit_records.emplace(unit, payload);
      sched.onUnitDone(job_id);
      notifyWatchers(job_id, payload);
      touch();
      return;
    }
    if (ev == "shard_done") {
      const std::string job_id = v->getString("job").value_or("");
      const auto index =
          static_cast<std::uint32_t>(v->getU64("shard").value_or(0));
      w.idle = true;
      sched.onShardDone(w.id, job_id, index);
      maybeFinalize(job_id);
      dispatch();
      touch();
      return;
    }
  }

  // ---- jobs -------------------------------------------------------------

  void maybeFinalize(const std::string& job_id) {
    const auto prog = sched.progress(job_id);
    if (!prog || prog->shards_in_flight > 0) return;
    const auto job = jobs.find(job_id);
    if (job == jobs.end() || job->second.finished) return;
    switch (prog->state) {
      case JobState::Done:
        finalizeJob(job_id, "done", "");
        break;
      case JobState::Cancelled:
        finalizeJob(job_id, "cancelled", "");
        break;
      case JobState::Failed:  // finalized at the failure site
      case JobState::Queued:
      case JobState::Running:
        break;
    }
  }

  void finalizeJob(const std::string& job_id, const std::string& status,
                   const std::string& note) {
    JobRec& rec = jobs[job_id];
    if (rec.finished) return;

    // Aggregate the unit records (recomputed identically after a
    // restart, since the inputs are the journal lines themselves).
    std::map<std::string, std::uint64_t> verdicts;
    std::uint64_t errors = 0, solver_checks = 0, instructions = 0;
    std::uint64_t qc_sat_solves = 0, qc_hits = 0, qc_misses = 0;
    for (const auto& [unit, line] : rec.unit_records) {
      const auto v = parseJson(line);
      if (!v) continue;
      if (const auto verdict = v->getString("verdict"))
        ++verdicts[*verdict];
      else
        ++errors;
      solver_checks += v->getU64("solver_checks").value_or(0);
      instructions += v->getU64("instructions").value_or(0);
      qc_sat_solves += v->getU64("qc_sat_solves").value_or(0);
      qc_hits += v->getU64("qc_hits").value_or(0);
      qc_misses += v->getU64("qc_misses").value_or(0);
    }

    JsonWriter w;
    w.beginObject();
    w.field("ev", "final");
    w.field("status", status);
    if (!note.empty()) w.field("note", note);
    w.field("units_total", rec.units_total);
    w.field("units_done", std::uint64_t{rec.unit_records.size()});
    w.key("verdicts").beginObject();
    for (const auto& [name, count] : verdicts) w.field(name, count);
    w.endObject();
    if (errors != 0) w.field("unit_errors", errors);
    w.field("solver_checks", solver_checks);
    w.field("instructions", instructions);
    w.field("qc_sat_solves", qc_sat_solves);
    w.field("qc_hits", qc_hits);
    w.field("qc_misses", qc_misses);
    w.endObject();

    rec.finished = true;
    rec.status = status;
    rec.final_record = w.str();
    store.appendLine(job_id, rec.final_record);
    logf("%s %s (%zu units)", job_id.c_str(), status.c_str(),
         rec.unit_records.size());
    notifyWatchers(job_id, rec.final_record);
    // A finished job needs no watchers.
    watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                  [&](const auto& p) {
                                    return p.second == job_id;
                                  }),
                   watchers.end());
  }

  void notifyWatchers(const std::string& job_id,
                      const std::string& payload) {
    for (const auto& [fd, watched] : watchers)
      if (watched == job_id) writeFrame(fd, payload);
  }

  // ---- clients ----------------------------------------------------------

  void onClientFrame(Client& c, const std::string& payload) {
    const auto v = parseJson(payload);
    if (!v) {
      writeFrame(c.fd, errorReply("unparsable request"));
      return;
    }
    const std::string cmd = v->getString("cmd").value_or("");
    if (cmd == "ping") {
      writeFrame(c.fd, okReply([](JsonWriter& w) { w.field("ev", "pong"); }));
      return;
    }
    if (cmd == "submit") {
      handleSubmit(c, *v);
      return;
    }
    if (cmd == "status") {
      handleStatus(c, *v);
      return;
    }
    if (cmd == "status_record") {
      writeFrame(c.fd, statusRecord());
      return;
    }
    if (cmd == "cancel") {
      const std::string job_id = v->getString("job").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      if (job->second.finished) {
        writeFrame(c.fd,
                   errorReply("job " + job_id + " already " +
                              job->second.status));
        return;
      }
      sched.cancel(job_id);
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("job", job_id);
        w.field("state", "cancelled");
      }));
      maybeFinalize(job_id);  // no shards in flight -> final now
      return;
    }
    if (cmd == "drain") {
      draining = true;
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("draining", true);
        w.field("active_jobs", std::uint64_t{sched.activeJobs()});
      }));
      return;
    }
    if (cmd == "watch") {
      const std::string job_id = v->getString("job").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      if (job->second.finished)
        writeFrame(c.fd, job->second.final_record);
      else
        watchers.emplace_back(c.fd, job_id);
      return;
    }
    writeFrame(c.fd, errorReply("unknown command '" + cmd + "'"));
  }

  void handleSubmit(Client& c, const JsonValue& v) {
    if (draining) {
      writeFrame(c.fd, errorReply("daemon is draining"));
      return;
    }
    const JsonValue* spec_v = v.find("spec");
    if (!spec_v) {
      writeFrame(c.fd, errorReply("submit carries no spec"));
      return;
    }
    std::string err;
    const auto spec = JobSpec::fromJson(*spec_v, &err);
    if (!spec) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    if (!obs::scenarioConstraint(spec->scenario)) {
      writeFrame(c.fd, errorReply("unknown scenario '" + spec->scenario +
                                  "'"));
      return;
    }
    solver::SolverOptions so;
    if (!solver::parseSolverOpt(spec->solver_opt, &so, &err)) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    const auto units = enumerateUnits(*spec, &err);
    if (!units) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    const std::string job_id = store.nextJobId();
    std::string why;
    if (!sched.submit(job_id, spec->max_shards, *units, 0, &why)) {
      writeFrame(c.fd, errorReply(why));
      return;
    }
    if (!store.createJob(job_id, *spec, &err)) {
      sched.cancel(job_id);
      writeFrame(c.fd, errorReply(err));
      return;
    }
    JobRec rec;
    rec.spec = *spec;
    rec.units_total = units->size();
    jobs.emplace(job_id, std::move(rec));
    logf("submitted %s: %s, %zu units", job_id.c_str(),
         spec->kind.c_str(), units->size());
    writeFrame(c.fd, okReply([&](JsonWriter& w) {
      w.field("job", job_id);
      w.field("units", std::uint64_t{units->size()});
    }));
    if (v.getBool("watch").value_or(false))
      watchers.emplace_back(c.fd, job_id);
    touch();
    dispatch();
  }

  void writeJobSummary(JsonWriter& w, const std::string& id,
                       const JobRec& rec) {
    w.beginObject();
    w.field("id", id);
    w.field("kind", rec.spec.kind);
    const auto prog = sched.progress(id);
    if (rec.finished) {
      w.field("state", rec.status);
      w.field("units_done", std::uint64_t{rec.unit_records.size()});
      w.field("units_total", rec.units_total);
    } else if (prog) {
      w.field("state", jobStateName(prog->state));
      w.field("units_done", prog->units_done);
      w.field("units_total", prog->units_total);
      w.field("shards_in_flight", std::uint64_t{prog->shards_in_flight});
    } else {
      w.field("state", "unknown");
    }
    w.endObject();
  }

  void handleStatus(Client& c, const JsonValue& v) {
    const std::string job_id = v.getString("job").value_or("");
    JsonWriter w;
    w.beginObject();
    w.field("ok", true);
    w.field("draining", draining);
    if (!job_id.empty()) {
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      w.key("job");
      writeJobSummary(w, job_id, job->second);
      std::map<std::string, std::uint64_t> verdicts;
      for (const auto& [unit, line] : job->second.unit_records)
        if (const auto rec = parseJson(line))
          if (const auto verdict = rec->getString("verdict"))
            ++verdicts[*verdict];
      w.key("verdicts").beginObject();
      for (const auto& [name, count] : verdicts) w.field(name, count);
      w.endObject();
      if (job->second.finished)
        w.key("final").rawValue(job->second.final_record);
    } else {
      w.key("jobs").beginArray();
      for (const auto& [id, rec] : jobs) writeJobSummary(w, id, rec);
      w.endArray();
      w.field("workers", std::uint64_t{workers.size()});
    }
    w.endObject();
    writeFrame(c.fd, w.str());
  }

  /// One rvsym-timeseries-v1 `status` record — byte-compatible with a
  /// --status-file document, so rvsym-top renders the daemon through
  /// the exact parser it uses for files.
  std::string statusRecord() {
    std::uint64_t done = 0, total = 0, running = 0, queued = 0,
                  finished = 0, failed = 0;
    for (const auto& [id, rec] : jobs) {
      if (rec.finished) {
        ++finished;
        if (rec.status == "failed") ++failed;
        done += rec.unit_records.size();
        total += rec.units_total;
        continue;
      }
      const auto prog = sched.progress(id);
      if (!prog) continue;
      done += prog->units_done;
      total += prog->units_total;
      if (prog->state == JobState::Running)
        ++running;
      else if (prog->state == JobState::Queued)
        ++queued;
    }
    const double t_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time)
                           .count();
    char extra[160];
    std::snprintf(extra, sizeof extra,
                  "jobs: %llu running, %llu queued, %llu finished "
                  "(%llu failed); workers %zu",
                  static_cast<unsigned long long>(running),
                  static_cast<unsigned long long>(queued),
                  static_cast<unsigned long long>(finished),
                  static_cast<unsigned long long>(failed), workers.size());

    JsonWriter w;
    w.beginObject();
    w.field("ev", "status");
    w.field("schema", "rvsym-timeseries-v1");
    w.field("version", std::uint64_t{1});
    w.field("kind", "serve");
    w.field("interval_s", 1.0);
    w.field("total_work", total);
    w.key("sample").beginObject();
    w.field("seq", status_seq++);
    w.field("t_s", t_s);
    w.key("work").beginObject();
    w.field("label", "units");
    w.field("done", done);
    w.field("total", total);
    w.endObject();
    w.field("extra", extra);
    w.endObject();
    w.endObject();
    return w.str();
  }

  // ---- event loop -------------------------------------------------------

  void touch() {
    last_activity = std::chrono::steady_clock::now();
    compacted_since_idle = false;
  }

  void dropClient(int fd) {
    clients.erase(fd);
    watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                  [&](const auto& p) {
                                    return p.first == fd;
                                  }),
                   watchers.end());
    ::close(fd);
  }

  /// Idle housekeeping: compact the cache store once per idle period —
  /// the scheduler being idle means no worker can be mid-append.
  void maybeCompact() {
    if (options.cache_dir.empty() || compacted_since_idle) return;
    if (!sched.idle()) return;
    const double idle_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              last_activity)
                              .count();
    if (idle_s < options.idle_compact_s) return;
    std::string err;
    const auto entries = solver::CacheStore::compact(options.cache_dir,
                                                     &err);
    if (entries)
      logf("compacted cache store: %llu entries",
           static_cast<unsigned long long>(*entries));
    else
      std::fprintf(stderr, "rvsym-serve: compaction failed: %s\n",
                   err.c_str());
    compacted_since_idle = true;
  }

  bool drainComplete() {
    if (!draining) return false;
    if (!sched.idle()) return false;
    for (const auto& [id, rec] : jobs)
      if (!rec.finished && sched.progress(id)) return false;
    return true;
  }

  void shutdownWorkers() {
    JsonWriter w;
    w.beginObject();
    w.field("cmd", "exit");
    w.endObject();
    for (auto& [fd, worker] : workers) writeFrame(fd, w.str());
    while (!workers.empty())
      removeWorker(workers.begin()->first, /*respawn=*/false);
  }

  int run() {
    std::vector<pollfd> fds;
    char buf[64 * 1024];
    for (;;) {
      if (options.stop_flag && *options.stop_flag) break;
      if (drainComplete()) break;
      maybeCompact();

      fds.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      for (const auto& [fd, c] : clients) fds.push_back({fd, POLLIN, 0});
      for (const auto& [fd, w] : workers) fds.push_back({fd, POLLIN, 0});
      const int n = ::poll(fds.data(), fds.size(), 200);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) continue;

      for (const pollfd& p : fds) {
        if (p.revents == 0) continue;
        if (p.fd == listen_fd) {
          const int cfd = ::accept(listen_fd, nullptr, nullptr);
          if (cfd >= 0) clients[cfd].fd = cfd;
          continue;
        }
        if (clients.count(p.fd)) {
          Client& c = clients[p.fd];
          const ssize_t got = ::recv(p.fd, buf, sizeof buf, 0);
          if (got <= 0) {
            dropClient(p.fd);
            continue;
          }
          c.dec.feed(std::string_view(buf, static_cast<std::size_t>(got)));
          std::string err;
          bool drop = false;
          while (const auto frame = c.dec.next(&err))
            onClientFrame(c, *frame);
          if (c.dec.corrupt()) drop = true;
          if (drop) dropClient(p.fd);
          continue;
        }
        const auto wit = workers.find(p.fd);
        if (wit == workers.end()) continue;
        Worker& w = *wit->second;
        const ssize_t got = ::recv(p.fd, buf, sizeof buf, 0);
        if (got <= 0 || (p.revents & (POLLHUP | POLLERR)) != 0) {
          if (got > 0)
            w.dec.feed(std::string_view(buf,
                                        static_cast<std::size_t>(got)));
          // Drain anything buffered before declaring the worker gone.
          std::string err;
          while (const auto frame = w.dec.next(&err))
            onWorkerFrame(w, *frame);
          removeWorker(p.fd, /*respawn=*/true);
          continue;
        }
        w.dec.feed(std::string_view(buf, static_cast<std::size_t>(got)));
        std::string err;
        while (const auto frame = w.dec.next(&err))
          onWorkerFrame(w, *frame);
        if (w.dec.corrupt()) removeWorker(p.fd, /*respawn=*/true);
      }
    }

    shutdownWorkers();
    if (!options.cache_dir.empty()) {
      std::string err;
      solver::CacheStore::compact(options.cache_dir, &err);
    }
    for (const auto& [fd, c] : clients) ::close(fd);
    clients.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (options.endpoint.kind == Endpoint::Kind::Unix)
      ::unlink(options.endpoint.path.c_str());
    return 0;
  }
};

Daemon::Daemon(DaemonOptions options) : impl_(new Impl(std::move(options))) {}

Daemon::~Daemon() { delete impl_; }

bool Daemon::init(std::string* error) { return impl_->init(error); }

int Daemon::run() { return impl_->run(); }

}  // namespace rvsym::serve
