#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "obs/bundle.hpp"
#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/exposition.hpp"
#include "obs/fleet/history.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "serve/job.hpp"
#include "serve/jobstore.hpp"
#include "serve/worker.hpp"
#include "solver/cachestore.hpp"
#include "solver/options.hpp"

namespace rvsym::serve {

namespace fleet = obs::fleet;

namespace {

using obs::JsonWriter;
using obs::analyze::JsonValue;
using obs::analyze::parseJson;

std::string okReply(const std::function<void(JsonWriter&)>& fill = {}) {
  JsonWriter w;
  w.beginObject();
  w.field("ok", true);
  if (fill) fill(w);
  w.endObject();
  return w.str();
}

std::string errorReply(const std::string& message) {
  JsonWriter w;
  w.beginObject();
  w.field("ok", false);
  w.field("error", message);
  w.endObject();
  return w.str();
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(DaemonOptions opts)
      : options(std::move(opts)), store(options.state_dir),
        sched(options.sched) {}

  DaemonOptions options;
  JobStore store;
  Scheduler sched;
  int listen_fd = -1;
  bool draining = false;
  std::uint64_t status_seq = 0;
  std::chrono::steady_clock::time_point start_time;
  std::chrono::steady_clock::time_point last_activity;
  bool compacted_since_idle = false;
  unsigned worker_seq = 0;

  // ---- fleet observability (DESIGN.md §14) ------------------------------

  obs::MetricsRegistry self;   ///< the daemon's own instruments
  fleet::FleetAggregator agg;  ///< worker id -> latest shipped snapshot
  std::unique_ptr<fleet::RunHistory> history;
  std::string env_json = fleet::runEnvJson();
  /// Daemon-side spans (job lifecycle); drained into traces["daemon"].
  obs::SpanCollector self_spans;
  /// One pending chrome-trace file per process (daemon + workers):
  /// events pre-rendered with pid 1, re-pidded by the merge tool.
  struct ProcTrace {
    std::uint64_t epoch_us = 0;
    std::set<std::uint32_t> tids;
    std::vector<std::string> events;  ///< rendered trace-event objects
  };
  std::map<std::string, ProcTrace> traces;
  int metrics_fd = -1;  ///< --metrics-listen socket (-1 = off)
  /// Scrape connections: tiny HTTP/1.0 exchanges served inline.
  std::map<int, std::string> scrapes;  ///< fd -> buffered request bytes

  struct Client {
    int fd = -1;
    FrameDecoder dec;
  };

  struct Worker {
    int fd = -1;
    FrameDecoder dec;
    std::string id;
    pid_t pid = -1;       // process mode
    std::thread thread;   // thread mode
    bool ready = false;   ///< hello received
    bool idle = false;
  };

  struct JobRec {
    JobSpec spec;
    std::uint64_t units_total = 0;
    std::map<std::string, std::string> unit_records;  ///< unit -> raw line
    bool finished = false;
    std::string status;        ///< done / failed / cancelled
    std::string final_record;  ///< raw final line
    /// Submit (or resume) instant — the daemon-side job span's start.
    std::chrono::steady_clock::time_point started;
  };

  std::map<int, Client> clients;
  std::map<int, std::unique_ptr<Worker>> workers;
  std::map<std::string, JobRec> jobs;
  std::vector<std::pair<int, std::string>> watchers;  ///< client fd -> job

  // ---- lifecycle --------------------------------------------------------

  bool init(std::string* error) {
    std::signal(SIGPIPE, SIG_IGN);  // dead peers are poll events, not death
    start_time = last_activity = std::chrono::steady_clock::now();
    listen_fd = listenOn(options.endpoint, error);
    if (listen_fd < 0) return false;
    if (options.metrics_listen) {
      metrics_fd = listenOn(*options.metrics_listen, error);
      if (metrics_fd < 0) return false;
    }
    if (options.history) {
      history = std::make_unique<fleet::RunHistory>(options.state_dir +
                                                    "/runs.rvhx");
      // Load once at startup purely for the tail repair: an append
      // after a kill -9 must start on a fresh line.
      std::vector<std::string> repair;
      history->loadAll(&repair);
      for (const std::string& msg : repair)
        std::fprintf(stderr, "rvsym-serve: %s\n", msg.c_str());
    }
    if (!options.trace_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.trace_dir, ec);
      if (ec) {
        if (error) *error = "cannot create " + options.trace_dir;
        return false;
      }
      flushDaemonTrace();  // daemon.trace.json exists from the start
    }

    // Resume: every unfinished journal is re-admitted with its judged
    // units skipped. Unit verdicts are deterministic, so the resumed
    // job converges to the verdict set of an uninterrupted run.
    std::vector<std::string> warnings;
    for (LoadedJob& loaded : store.loadAll(&warnings)) {
      JobRec rec;
      rec.started = start_time;
      rec.spec = loaded.spec;
      rec.unit_records = std::move(loaded.unit_records);
      rec.finished = loaded.finished;
      rec.final_record = loaded.final_record;
      rec.units_total = rec.unit_records.size();
      if (rec.finished) {
        if (const auto v = parseJson(rec.final_record))
          rec.status = v->getString("status").value_or("done");
        jobs.emplace(loaded.id, std::move(rec));
        continue;
      }
      std::string err;
      const auto units = enumerateUnits(rec.spec, &err);
      if (!units) {
        jobs.emplace(loaded.id, std::move(rec));
        finalizeJob(loaded.id, "failed",
                    "cannot re-enumerate units: " + err);
        continue;
      }
      std::vector<std::string> remaining;
      for (const std::string& u : *units)
        if (!rec.unit_records.count(u)) remaining.push_back(u);
      rec.units_total = units->size();
      const std::uint64_t done = units->size() - remaining.size();
      jobs.emplace(loaded.id, std::move(rec));
      sched.submit(loaded.id, jobs[loaded.id].spec.max_shards,
                   std::move(remaining), done);
      logf("resumed %s: %llu/%llu units already judged", loaded.id.c_str(),
           static_cast<unsigned long long>(done),
           static_cast<unsigned long long>(units->size()));
      maybeFinalize(loaded.id);
    }
    for (const std::string& wmsg : warnings)
      std::fprintf(stderr, "rvsym-serve: %s\n", wmsg.c_str());

    for (unsigned i = 0; i < std::max(1u, options.workers); ++i)
      if (!spawnWorker(error)) return false;
    return true;
  }

  void logf(const char* fmt, ...) {
    if (!options.verbose) return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "rvsym-serve: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  // ---- workers ----------------------------------------------------------

  bool spawnWorker(std::string* error) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      if (error) *error = "socketpair failed";
      return false;
    }
    auto w = std::make_unique<Worker>();
    w->id = "w" + std::to_string(worker_seq++);
    w->fd = sv[0];

    WorkerConfig cfg;
    cfg.cache_dir = options.cache_dir;
    cfg.tag = w->id;
    cfg.engine_jobs = options.engine_jobs;
    // The fail-after hook arms only the first worker ever spawned, so a
    // respawn after the simulated crash judges normally instead of
    // crash-looping.
    if (options.thread_workers && w->id == "w0")
      cfg.fail_after_units = options.worker_fail_after_units;

    if (options.thread_workers) {
      const int worker_fd = sv[1];
      w->thread = std::thread([worker_fd, cfg] {
        workerMain(worker_fd, cfg);
        ::close(worker_fd);
      });
    } else {
      cfg.crash_dir = options.crash_dir;
      const pid_t pid = ::fork();
      if (pid < 0) {
        if (error) *error = "fork failed";
        ::close(sv[0]);
        ::close(sv[1]);
        return false;
      }
      if (pid == 0) {
        // Child: drop every daemon fd except the worker socket.
        ::close(sv[0]);
        ::close(listen_fd);
        for (const auto& [cfd, c] : clients) ::close(cfd);
        for (const auto& [wfd, other] : workers) ::close(wfd);
        const int code = workerMain(sv[1], cfg);
        std::_Exit(code);
      }
      w->pid = pid;
      ::close(sv[1]);
    }
    logf("spawned worker %s", w->id.c_str());
    self.counter("serve.workers_spawned").add(1);
    workers.emplace(sv[0], std::move(w));
    return true;
  }

  void removeWorker(int fd, bool respawn) {
    const auto it = workers.find(fd);
    if (it == workers.end()) return;
    std::unique_ptr<Worker> w = std::move(it->second);
    workers.erase(it);
    ::close(fd);
    if (respawn) self.counter("serve.worker_deaths").add(1);
    for (const std::string& job_id : sched.onWorkerGone(w->id)) {
      logf("worker %s died holding a shard of %s", w->id.c_str(),
           job_id.c_str());
      finalizeJob(job_id, "failed",
                  "worker " + w->id + " died while judging");
    }
    if (w->pid > 0) {
      int st = 0;
      ::waitpid(w->pid, &st, 0);
    }
    if (w->thread.joinable()) w->thread.join();
    if (respawn && !draining) {
      std::string err;
      if (!spawnWorker(&err))
        std::fprintf(stderr, "rvsym-serve: respawn failed: %s\n",
                     err.c_str());
    }
    dispatch();
  }

  void dispatch() {
    for (auto& [fd, w] : workers) {
      if (!w->ready || !w->idle) continue;
      const auto shard = sched.nextShard(w->id);
      if (!shard) continue;
      const JobRec& rec = jobs[shard->job_id];
      JsonWriter msg;
      msg.beginObject();
      msg.field("cmd", "shard");
      msg.field("job", shard->job_id);
      msg.field("shard", std::uint64_t{shard->index});
      msg.key("spec").rawValue(rec.spec.toJson());
      msg.key("units").beginArray();
      for (const std::string& u : shard->units) msg.value(u);
      msg.endArray();
      msg.endObject();
      if (!writeFrame(fd, msg.str())) continue;  // poll will reap it
      w->idle = false;
      touch();
    }
  }

  void onWorkerFrame(Worker& w, const std::string& payload) {
    const auto v = parseJson(payload);
    if (!v) return;
    const std::string ev = v->getString("ev").value_or("");
    if (ev == "hello") {
      w.ready = true;
      w.idle = true;
      dispatch();
      return;
    }
    if (ev == "unit") {
      const std::string job_id = v->getString("job").value_or("");
      const std::string unit = v->getString("unit").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end() || unit.empty()) return;
      // Journal first, memory second: after a kill -9 the journal is
      // the truth the restart resumes from.
      store.appendLine(job_id, payload);
      job->second.unit_records.emplace(unit, payload);
      self.counter("serve.units_recorded").add(1);
      sched.onUnitDone(job_id);
      notifyWatchers(job_id, payload);
      touch();
      return;
    }
    if (ev == "metrics_report") {
      if (const JsonValue* reg = v->find("registry"))
        if (auto snap = fleet::RegistrySnapshot::fromJson(*reg))
          agg.update(w.id, std::move(*snap));
      return;
    }
    if (ev == "spans_report") {
      if (!options.trace_dir.empty()) absorbSpansReport(w.id, *v);
      return;
    }
    if (ev == "shard_done") {
      const std::string job_id = v->getString("job").value_or("");
      const auto index =
          static_cast<std::uint32_t>(v->getU64("shard").value_or(0));
      w.idle = true;
      sched.onShardDone(w.id, job_id, index);
      maybeFinalize(job_id);
      dispatch();
      touch();
      return;
    }
  }

  // ---- fleet traces -----------------------------------------------------

  /// Buffers one spans_report batch and rewrites the worker's trace
  /// file (files are per-process small; a full rewrite keeps them valid
  /// JSON at every instant for a mid-campaign merge).
  void absorbSpansReport(const std::string& worker_id, const JsonValue& v) {
    ProcTrace& t = traces[worker_id];
    t.epoch_us = v.getU64("epoch_us").value_or(t.epoch_us);
    const JsonValue* spans = v.find("spans");
    if (!spans || !spans->isArray()) return;
    for (const JsonValue& s : spans->items()) {
      if (!s.isObject()) continue;
      const auto tid = s.getU64("tid").value_or(0);
      t.tids.insert(static_cast<std::uint32_t>(tid));
      JsonWriter e;
      e.beginObject();
      e.field("name", s.getString("name").value_or(""));
      e.field("cat", s.getString("cat").value_or("phase"));
      e.field("ph", "X");
      e.field("ts", s.getU64("ts_us").value_or(0));
      e.field("dur", s.getU64("dur_us").value_or(0));
      e.field("pid", std::uint64_t{1});
      e.field("tid", tid);
      if (const JsonValue* args = s.find("args")) {
        e.key("args");
        obs::analyze::writeJson(e, *args);
      }
      e.endObject();
      t.events.push_back(e.str());
    }
    writeProcTrace(worker_id);
  }

  /// Moves the daemon's own spans into traces["daemon"] and rewrites
  /// daemon.trace.json.
  void flushDaemonTrace() {
    ProcTrace& t = traces["daemon"];
    t.epoch_us = self_spans.epochSteadyUs();
    for (const obs::Span& s : self_spans.drain()) {
      t.tids.insert(s.tid);
      JsonWriter e;
      e.beginObject();
      e.field("name", s.name);
      e.field("cat", s.cat);
      e.field("ph", "X");
      e.field("ts", s.ts_us);
      e.field("dur", s.dur_us);
      e.field("pid", std::uint64_t{1});
      e.field("tid", static_cast<std::uint64_t>(s.tid));
      if (!s.args.empty()) {
        e.key("args").beginObject();
        for (const auto& [k, val] : s.args) e.key(k).rawValue(val);
        e.endObject();
      }
      e.endObject();
      t.events.push_back(e.str());
    }
    writeProcTrace("daemon");
  }

  void writeProcTrace(const std::string& id) {
    const ProcTrace& t = traces[id];
    const std::string pname =
        id == "daemon" ? std::string("rvsym-serve daemon") : "worker " + id;
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const std::uint32_t tid : t.tids) {
      w.beginObject();
      w.field("name", "thread_name");
      w.field("ph", "M");
      w.field("pid", std::uint64_t{1});
      w.field("tid", static_cast<std::uint64_t>(tid));
      w.key("args").beginObject();
      w.field("name", pname + " t" + std::to_string(tid));
      w.endObject();
      w.endObject();
    }
    for (const std::string& e : t.events) w.rawValue(e);
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.key("otherData").beginObject();
    w.field("producer", "rvsym-serve");
    w.field("process_name", pname);
    w.field("epoch_us", t.epoch_us);
    w.endObject();
    w.endObject();
    const std::string path =
        options.trace_dir + "/" +
        (id == "daemon" ? "daemon.trace.json" : "worker-" + id + ".trace.json");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out << w.str() << "\n";
  }

  // ---- jobs -------------------------------------------------------------

  void maybeFinalize(const std::string& job_id) {
    const auto prog = sched.progress(job_id);
    if (!prog || prog->shards_in_flight > 0) return;
    const auto job = jobs.find(job_id);
    if (job == jobs.end() || job->second.finished) return;
    switch (prog->state) {
      case JobState::Done:
        finalizeJob(job_id, "done", "");
        break;
      case JobState::Cancelled:
        finalizeJob(job_id, "cancelled", "");
        break;
      case JobState::Failed:  // finalized at the failure site
      case JobState::Queued:
      case JobState::Running:
        break;
    }
  }

  void finalizeJob(const std::string& job_id, const std::string& status,
                   const std::string& note) {
    JobRec& rec = jobs[job_id];
    if (rec.finished) return;

    // Aggregate the unit records (recomputed identically after a
    // restart, since the inputs are the journal lines themselves).
    std::map<std::string, std::uint64_t> verdicts;
    std::uint64_t errors = 0, solver_checks = 0, instructions = 0;
    std::uint64_t qc_sat_solves = 0, qc_hits = 0, qc_misses = 0;
    double wall_s = 0;
    for (const auto& [unit, line] : rec.unit_records) {
      const auto v = parseJson(line);
      if (!v) continue;
      if (const auto verdict = v->getString("verdict"))
        ++verdicts[*verdict];
      else
        ++errors;
      solver_checks += v->getU64("solver_checks").value_or(0);
      instructions += v->getU64("instructions").value_or(0);
      qc_sat_solves += v->getU64("qc_sat_solves").value_or(0);
      qc_hits += v->getU64("qc_hits").value_or(0);
      qc_misses += v->getU64("qc_misses").value_or(0);
      wall_s += v->getNumber("t_seconds").value_or(0);
    }

    JsonWriter w;
    w.beginObject();
    w.field("ev", "final");
    w.field("status", status);
    if (!note.empty()) w.field("note", note);
    w.field("units_total", rec.units_total);
    w.field("units_done", std::uint64_t{rec.unit_records.size()});
    w.key("verdicts").beginObject();
    for (const auto& [name, count] : verdicts) w.field(name, count);
    w.endObject();
    if (errors != 0) w.field("unit_errors", errors);
    w.field("solver_checks", solver_checks);
    w.field("instructions", instructions);
    w.field("qc_sat_solves", qc_sat_solves);
    w.field("qc_hits", qc_hits);
    w.field("qc_misses", qc_misses);
    w.endObject();

    rec.finished = true;
    rec.status = status;
    rec.final_record = w.str();
    store.appendLine(job_id, rec.final_record);
    self.counter("serve.jobs_" + status).add(1);
    if (history) {
      fleet::RunRecord run;
      run.job = job_id;
      run.kind = rec.spec.kind;
      run.scenario = rec.spec.scenario;
      run.solver_opt = rec.spec.solver_opt;
      run.status = status;
      run.units_total = rec.units_total;
      run.units_done = rec.unit_records.size();
      run.unit_errors = errors;
      run.verdicts = verdicts;
      run.solver_checks = solver_checks;
      run.instructions = instructions;
      run.qc_sat_solves = qc_sat_solves;
      run.qc_hits = qc_hits;
      run.qc_misses = qc_misses;
      run.wall_s = wall_s;
      run.env_json = env_json;
      if (!history->append(run))
        std::fprintf(stderr, "rvsym-serve: cannot append %s\n",
                     history->path().c_str());
    }
    if (!options.trace_dir.empty()) {
      obs::Span s;
      s.name = "job " + job_id;
      s.cat = "phase";
      s.tid = self_spans.threadTrack();
      s.ts_us = self_spans.sinceEpochUs(rec.started);
      s.dur_us = self_spans.nowUs() - s.ts_us;
      s.args = {{"kind", "\"" + obs::jsonEscape(rec.spec.kind) + "\""},
                {"status", "\"" + obs::jsonEscape(status) + "\""},
                {"units", std::to_string(rec.unit_records.size())}};
      self_spans.add(std::move(s));
      flushDaemonTrace();
    }
    logf("%s %s (%zu units)", job_id.c_str(), status.c_str(),
         rec.unit_records.size());
    notifyWatchers(job_id, rec.final_record);
    // A finished job needs no watchers.
    watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                  [&](const auto& p) {
                                    return p.second == job_id;
                                  }),
                   watchers.end());
  }

  void notifyWatchers(const std::string& job_id,
                      const std::string& payload) {
    for (const auto& [fd, watched] : watchers)
      if (watched == job_id) writeFrame(fd, payload);
  }

  // ---- clients ----------------------------------------------------------

  void onClientFrame(Client& c, const std::string& payload) {
    const auto v = parseJson(payload);
    if (!v) {
      writeFrame(c.fd, errorReply("unparsable request"));
      return;
    }
    const std::string cmd = v->getString("cmd").value_or("");
    if (cmd == "ping") {
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("ev", "pong");
        w.field("workers", std::uint64_t{workers.size()});
        w.field("jobs", std::uint64_t{jobs.size()});
        w.field("draining", draining);
      }));
      return;
    }
    if (cmd == "metrics") {
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("exposition", renderMetricsText());
      }));
      return;
    }
    if (cmd == "workers") {
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        std::set<std::string> live;
        for (const auto& [fd, worker] : workers) live.insert(worker->id);
        w.key("workers").beginArray();
        std::set<std::string> reported;
        for (const auto& [id, snap] : agg.sources()) {
          if (id == "daemon") continue;
          reported.insert(id);
          w.beginObject();
          w.field("id", id);
          w.field("connected", live.count(id) != 0);
          const auto counter = [&](const char* name) -> std::uint64_t {
            const auto it = snap.counters.find(name);
            return it == snap.counters.end() ? 0 : it->second;
          };
          w.field("units", counter("serve.units"));
          w.field("solver_queries", counter("solver.queries"));
          w.field("qc_hits", counter("qcache.hits"));
          w.field("qc_misses", counter("qcache.misses"));
          const auto hit = snap.histograms.find("solver.check_us");
          if (hit != snap.histograms.end()) {
            const auto h = fleet::toHistogram(hit->second);
            w.field("sat_solves", h->count());
            w.field("check_p50_us", h->quantileMicros(0.5));
            w.field("check_p90_us", h->quantileMicros(0.9));
          } else {
            w.field("sat_solves", std::uint64_t{0});
          }
          w.endObject();
        }
        // Live workers that have not shipped a snapshot yet still show.
        for (const std::string& id : live) {
          if (reported.count(id)) continue;
          w.beginObject();
          w.field("id", id);
          w.field("connected", true);
          w.endObject();
        }
        w.endArray();
      }));
      return;
    }
    if (cmd == "submit") {
      handleSubmit(c, *v);
      return;
    }
    if (cmd == "status") {
      handleStatus(c, *v);
      return;
    }
    if (cmd == "status_record") {
      writeFrame(c.fd, statusRecord());
      return;
    }
    if (cmd == "cancel") {
      const std::string job_id = v->getString("job").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      if (job->second.finished) {
        writeFrame(c.fd,
                   errorReply("job " + job_id + " already " +
                              job->second.status));
        return;
      }
      sched.cancel(job_id);
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("job", job_id);
        w.field("state", "cancelled");
      }));
      maybeFinalize(job_id);  // no shards in flight -> final now
      return;
    }
    if (cmd == "drain") {
      draining = true;
      writeFrame(c.fd, okReply([&](JsonWriter& w) {
        w.field("draining", true);
        w.field("active_jobs", std::uint64_t{sched.activeJobs()});
      }));
      return;
    }
    if (cmd == "watch") {
      const std::string job_id = v->getString("job").value_or("");
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      if (job->second.finished)
        writeFrame(c.fd, job->second.final_record);
      else
        watchers.emplace_back(c.fd, job_id);
      return;
    }
    writeFrame(c.fd, errorReply("unknown command '" + cmd + "'"));
  }

  void handleSubmit(Client& c, const JsonValue& v) {
    if (draining) {
      writeFrame(c.fd, errorReply("daemon is draining"));
      return;
    }
    const JsonValue* spec_v = v.find("spec");
    if (!spec_v) {
      writeFrame(c.fd, errorReply("submit carries no spec"));
      return;
    }
    std::string err;
    const auto spec = JobSpec::fromJson(*spec_v, &err);
    if (!spec) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    if (!obs::scenarioConstraint(spec->scenario)) {
      writeFrame(c.fd, errorReply("unknown scenario '" + spec->scenario +
                                  "'"));
      return;
    }
    solver::SolverOptions so;
    if (!solver::parseSolverOpt(spec->solver_opt, &so, &err)) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    const auto units = enumerateUnits(*spec, &err);
    if (!units) {
      writeFrame(c.fd, errorReply(err));
      return;
    }
    const std::string job_id = store.nextJobId();
    std::string why;
    if (!sched.submit(job_id, spec->max_shards, *units, 0, &why)) {
      writeFrame(c.fd, errorReply(why));
      return;
    }
    if (!store.createJob(job_id, *spec, &err)) {
      sched.cancel(job_id);
      writeFrame(c.fd, errorReply(err));
      return;
    }
    JobRec rec;
    rec.spec = *spec;
    rec.units_total = units->size();
    rec.started = std::chrono::steady_clock::now();
    jobs.emplace(job_id, std::move(rec));
    self.counter("serve.jobs_submitted").add(1);
    logf("submitted %s: %s, %zu units", job_id.c_str(),
         spec->kind.c_str(), units->size());
    writeFrame(c.fd, okReply([&](JsonWriter& w) {
      w.field("job", job_id);
      w.field("units", std::uint64_t{units->size()});
    }));
    if (v.getBool("watch").value_or(false))
      watchers.emplace_back(c.fd, job_id);
    touch();
    dispatch();
  }

  void writeJobSummary(JsonWriter& w, const std::string& id,
                       const JobRec& rec) {
    w.beginObject();
    w.field("id", id);
    w.field("kind", rec.spec.kind);
    const auto prog = sched.progress(id);
    if (rec.finished) {
      w.field("state", rec.status);
      w.field("units_done", std::uint64_t{rec.unit_records.size()});
      w.field("units_total", rec.units_total);
    } else if (prog) {
      w.field("state", jobStateName(prog->state));
      w.field("units_done", prog->units_done);
      w.field("units_total", prog->units_total);
      w.field("shards_in_flight", std::uint64_t{prog->shards_in_flight});
    } else {
      w.field("state", "unknown");
    }
    w.endObject();
  }

  void handleStatus(Client& c, const JsonValue& v) {
    const std::string job_id = v.getString("job").value_or("");
    JsonWriter w;
    w.beginObject();
    w.field("ok", true);
    w.field("draining", draining);
    if (!job_id.empty()) {
      const auto job = jobs.find(job_id);
      if (job == jobs.end()) {
        writeFrame(c.fd, errorReply("unknown job " + job_id));
        return;
      }
      w.key("job");
      writeJobSummary(w, job_id, job->second);
      std::map<std::string, std::uint64_t> verdicts;
      for (const auto& [unit, line] : job->second.unit_records)
        if (const auto rec = parseJson(line))
          if (const auto verdict = rec->getString("verdict"))
            ++verdicts[*verdict];
      w.key("verdicts").beginObject();
      for (const auto& [name, count] : verdicts) w.field(name, count);
      w.endObject();
      if (job->second.finished)
        w.key("final").rawValue(job->second.final_record);
    } else {
      w.key("jobs").beginArray();
      for (const auto& [id, rec] : jobs) writeJobSummary(w, id, rec);
      w.endArray();
      w.field("workers", std::uint64_t{workers.size()});
    }
    w.endObject();
    writeFrame(c.fd, w.str());
  }

  /// One rvsym-timeseries-v1 `status` record — byte-compatible with a
  /// --status-file document, so rvsym-top renders the daemon through
  /// the exact parser it uses for files.
  std::string statusRecord() {
    std::uint64_t done = 0, total = 0, running = 0, queued = 0,
                  finished = 0, failed = 0;
    for (const auto& [id, rec] : jobs) {
      if (rec.finished) {
        ++finished;
        if (rec.status == "failed") ++failed;
        done += rec.unit_records.size();
        total += rec.units_total;
        continue;
      }
      const auto prog = sched.progress(id);
      if (!prog) continue;
      done += prog->units_done;
      total += prog->units_total;
      if (prog->state == JobState::Running)
        ++running;
      else if (prog->state == JobState::Queued)
        ++queued;
    }
    const double t_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time)
                           .count();
    char extra[160];
    std::snprintf(extra, sizeof extra,
                  "jobs: %llu running, %llu queued, %llu finished "
                  "(%llu failed); workers %zu",
                  static_cast<unsigned long long>(running),
                  static_cast<unsigned long long>(queued),
                  static_cast<unsigned long long>(finished),
                  static_cast<unsigned long long>(failed), workers.size());

    JsonWriter w;
    w.beginObject();
    w.field("ev", "status");
    w.field("schema", "rvsym-timeseries-v1");
    w.field("version", std::uint64_t{1});
    w.field("kind", "serve");
    w.field("interval_s", 1.0);
    w.field("total_work", total);
    w.key("sample").beginObject();
    w.field("seq", status_seq++);
    w.field("t_s", t_s);
    w.key("work").beginObject();
    w.field("label", "units");
    w.field("done", done);
    w.field("total", total);
    w.endObject();
    w.field("extra", extra);
    w.endObject();
    w.endObject();
    return w.str();
  }

  /// The Prometheus text exposition: fleet aggregate (workers + the
  /// daemon's own registry), per-worker gauge series, per-job series.
  /// Gauges are set here, at render time, from daemon state — they are
  /// the only non-monotone values and stay stable while idle, so two
  /// idle scrapes are byte-identical.
  std::string renderMetricsText() {
    self.gauge("serve.workers").set(
        static_cast<std::int64_t>(workers.size()));
    std::int64_t active = 0;
    for (const auto& [id, rec] : jobs)
      if (!rec.finished) ++active;
    self.gauge("serve.jobs_active").set(active);

    fleet::ExpositionInput in;
    in.workers = agg.sources();
    in.workers["daemon"] = fleet::RegistrySnapshot::of(self);
    fleet::FleetAggregator all = agg;
    all.update("daemon", fleet::RegistrySnapshot::of(self));
    in.fleet = all.merged();
    for (const auto& [id, rec] : jobs) {
      fleet::JobSeries js;
      js.id = id;
      js.kind = rec.spec.kind;
      if (rec.finished) {
        js.state = rec.status;
        js.units_done = rec.unit_records.size();
        js.units_total = rec.units_total;
      } else if (const auto prog = sched.progress(id)) {
        js.state = jobStateName(prog->state);
        js.units_done = prog->units_done;
        js.units_total = prog->units_total;
      } else {
        js.state = "unknown";
        js.units_done = rec.unit_records.size();
        js.units_total = rec.units_total;
      }
      in.jobs.push_back(std::move(js));
    }
    return fleet::renderExposition(in);
  }

  /// Serves one buffered HTTP scrape once the blank line arrives. The
  /// exchange is deliberately minimal: any request gets the exposition
  /// (a scraper that GETs /metrics and one that GETs / both succeed).
  void serveScrape(int fd) {
    const std::string body = renderMetricsText();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t put = ::send(fd, resp.data() + off, resp.size() - off,
                                 MSG_NOSIGNAL);
      if (put <= 0) break;
      off += static_cast<std::size_t>(put);
    }
  }

  // ---- event loop -------------------------------------------------------

  void touch() {
    last_activity = std::chrono::steady_clock::now();
    compacted_since_idle = false;
  }

  void dropClient(int fd) {
    clients.erase(fd);
    watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                  [&](const auto& p) {
                                    return p.first == fd;
                                  }),
                   watchers.end());
    ::close(fd);
  }

  /// Idle housekeeping: compact the cache store once per idle period —
  /// the scheduler being idle means no worker can be mid-append.
  void maybeCompact() {
    if (options.cache_dir.empty() || compacted_since_idle) return;
    if (!sched.idle()) return;
    const double idle_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              last_activity)
                              .count();
    if (idle_s < options.idle_compact_s) return;
    std::string err;
    const auto entries = solver::CacheStore::compact(options.cache_dir,
                                                     &err);
    if (entries)
      logf("compacted cache store: %llu entries",
           static_cast<unsigned long long>(*entries));
    else
      std::fprintf(stderr, "rvsym-serve: compaction failed: %s\n",
                   err.c_str());
    compacted_since_idle = true;
  }

  bool drainComplete() {
    if (!draining) return false;
    if (!sched.idle()) return false;
    for (const auto& [id, rec] : jobs)
      if (!rec.finished && sched.progress(id)) return false;
    return true;
  }

  void shutdownWorkers() {
    JsonWriter w;
    w.beginObject();
    w.field("cmd", "exit");
    w.endObject();
    for (auto& [fd, worker] : workers) writeFrame(fd, w.str());
    while (!workers.empty())
      removeWorker(workers.begin()->first, /*respawn=*/false);
  }

  int run() {
    std::vector<pollfd> fds;
    char buf[64 * 1024];
    for (;;) {
      if (options.stop_flag && *options.stop_flag) break;
      if (drainComplete()) break;
      maybeCompact();

      fds.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      if (metrics_fd >= 0) fds.push_back({metrics_fd, POLLIN, 0});
      for (const auto& [fd, req] : scrapes) fds.push_back({fd, POLLIN, 0});
      for (const auto& [fd, c] : clients) fds.push_back({fd, POLLIN, 0});
      for (const auto& [fd, w] : workers) fds.push_back({fd, POLLIN, 0});
      const int n = ::poll(fds.data(), fds.size(), 200);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (n == 0) continue;

      for (const pollfd& p : fds) {
        if (p.revents == 0) continue;
        if (p.fd == listen_fd) {
          const int cfd = ::accept(listen_fd, nullptr, nullptr);
          if (cfd >= 0) clients[cfd].fd = cfd;
          continue;
        }
        if (metrics_fd >= 0 && p.fd == metrics_fd) {
          const int sfd = ::accept(metrics_fd, nullptr, nullptr);
          if (sfd >= 0) scrapes[sfd];
          continue;
        }
        if (const auto sit = scrapes.find(p.fd); sit != scrapes.end()) {
          const ssize_t got = ::recv(p.fd, buf, sizeof buf, 0);
          if (got > 0)
            sit->second.append(buf, static_cast<std::size_t>(got));
          // End of request headers, connection closed, or a request far
          // past any sane GET line: answer (or give up) and close.
          const bool complete =
              sit->second.find("\r\n\r\n") != std::string::npos ||
              sit->second.find("\n\n") != std::string::npos;
          if (complete)
            serveScrape(p.fd);
          else if (got > 0 && sit->second.size() < 8192)
            continue;
          ::close(p.fd);
          scrapes.erase(sit);
          continue;
        }
        if (clients.count(p.fd)) {
          Client& c = clients[p.fd];
          const ssize_t got = ::recv(p.fd, buf, sizeof buf, 0);
          if (got <= 0) {
            dropClient(p.fd);
            continue;
          }
          c.dec.feed(std::string_view(buf, static_cast<std::size_t>(got)));
          std::string err;
          bool drop = false;
          while (const auto frame = c.dec.next(&err))
            onClientFrame(c, *frame);
          if (c.dec.corrupt()) drop = true;
          if (drop) dropClient(p.fd);
          continue;
        }
        const auto wit = workers.find(p.fd);
        if (wit == workers.end()) continue;
        Worker& w = *wit->second;
        const ssize_t got = ::recv(p.fd, buf, sizeof buf, 0);
        if (got <= 0 || (p.revents & (POLLHUP | POLLERR)) != 0) {
          if (got > 0)
            w.dec.feed(std::string_view(buf,
                                        static_cast<std::size_t>(got)));
          // Drain anything buffered before declaring the worker gone.
          std::string err;
          while (const auto frame = w.dec.next(&err))
            onWorkerFrame(w, *frame);
          removeWorker(p.fd, /*respawn=*/true);
          continue;
        }
        w.dec.feed(std::string_view(buf, static_cast<std::size_t>(got)));
        std::string err;
        while (const auto frame = w.dec.next(&err))
          onWorkerFrame(w, *frame);
        if (w.dec.corrupt()) removeWorker(p.fd, /*respawn=*/true);
      }
    }

    shutdownWorkers();
    if (!options.trace_dir.empty()) flushDaemonTrace();
    if (!options.cache_dir.empty()) {
      std::string err;
      solver::CacheStore::compact(options.cache_dir, &err);
    }
    for (const auto& [fd, c] : clients) ::close(fd);
    clients.clear();
    for (const auto& [fd, req] : scrapes) ::close(fd);
    scrapes.clear();
    if (metrics_fd >= 0) ::close(metrics_fd);
    if (listen_fd >= 0) ::close(listen_fd);
    if (options.endpoint.kind == Endpoint::Kind::Unix)
      ::unlink(options.endpoint.path.c_str());
    return 0;
  }
};

Daemon::Daemon(DaemonOptions options) : impl_(new Impl(std::move(options))) {}

Daemon::~Daemon() { delete impl_; }

bool Daemon::init(std::string* error) { return impl_->init(error); }

int Daemon::run() { return impl_->run(); }

}  // namespace rvsym::serve
