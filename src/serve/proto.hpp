// rvsym-serve-v1 wire protocol — length-prefixed JSON frames.
//
// Every message on a serve connection (client <-> daemon and daemon <->
// worker alike) is one frame:
//
//   [4-byte big-endian payload length][payload bytes]
//
// The payload is one JSON object. Frames above kMaxFrameBytes are a
// protocol violation: the receiver reports an error and drops the
// connection rather than allocating attacker-controlled amounts of
// memory. Length 0 is likewise invalid (there is no empty message).
//
// Two consumption styles:
//  * readFrame/writeFrame — blocking, loop over partial reads/writes
//    and EINTR; what workers and the CLI client use;
//  * FrameDecoder — incremental, fed whatever bytes poll() delivered;
//    what the daemon's event loop uses.
//
// Endpoints are spelled "unix:<path>" (a filesystem socket) or
// "tcp:<port>" (loopback only — the daemon is not an authenticated
// network service; remote use goes through an SSH tunnel).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rvsym::serve {

inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Renders the 4-byte length prefix for `payload_size`.
std::string frameHeader(std::uint32_t payload_size);

/// Blocking send of one frame. False on I/O error or oversized payload.
bool writeFrame(int fd, std::string_view payload, std::string* error = nullptr);

/// Blocking receive of one frame. nullopt with empty *error = clean EOF
/// at a frame boundary; nullopt with non-empty *error = I/O error,
/// protocol violation (oversized/zero-length frame) or torn EOF.
std::optional<std::string> readFrame(int fd, std::string* error = nullptr);

/// Incremental frame decoder for poll()-driven loops.
class FrameDecoder {
 public:
  /// Appends bytes received from the peer.
  void feed(std::string_view bytes);
  /// Pops the next complete frame, if any. After a protocol violation
  /// (oversized/zero-length header) every call returns nullopt with
  /// *error set — the caller should drop the connection.
  std::optional<std::string> next(std::string* error = nullptr);
  bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool corrupt_ = false;
};

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;         ///< unix socket path
  std::uint16_t port = 0;   ///< tcp port (loopback)

  std::string spec() const;  ///< back to "unix:..." / "tcp:..."
};

/// Parses "unix:<path>" / "tcp:<port>". A bare string with no scheme is
/// taken as a unix path (the common case).
std::optional<Endpoint> parseEndpoint(const std::string& spec,
                                      std::string* error = nullptr);

/// Bound + listening socket fd, or -1 with *error. Unix sockets unlink
/// a stale path first; tcp binds 127.0.0.1 only.
int listenOn(const Endpoint& ep, std::string* error = nullptr);

/// Connected socket fd, or -1 with *error.
int connectTo(const Endpoint& ep, std::string* error = nullptr);

}  // namespace rvsym::serve
