// Scheduler — shard assignment across serve workers.
//
// Pure in-memory policy, no I/O: the daemon feeds it submissions and
// worker events, it answers "what should this idle worker do next".
//
// Units are grouped into shards of a few units each. Dispatch is
// pull-based: an idle worker asks for the next shard, and the scheduler
// picks from the *eligible* job — below its per-job quota — with the
// fewest shards in flight (ties: oldest submission). Because shards are
// small and pulled one at a time, a worker that finishes early
// automatically steals the remaining shards of a job another worker is
// still chewing on; there is no static unit->worker partition to
// rebalance.
//
// Backpressure: at most `max_queued_jobs` non-terminal jobs are
// admitted; past that submit() refuses and the client sees "busy"
// instead of the daemon buffering without bound.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace rvsym::serve {

enum class JobState : std::uint8_t {
  Queued,     ///< admitted, no shard dispatched yet
  Running,    ///< at least one shard dispatched
  Done,       ///< every unit judged
  Failed,     ///< a worker died holding one of its shards
  Cancelled,  ///< client cancel; in-flight shards drain, queue dropped
};

const char* jobStateName(JobState s);

struct Shard {
  std::string job_id;
  std::uint32_t index = 0;  ///< shard number within the job
  std::vector<std::string> units;
};

struct JobProgress {
  std::string id;
  JobState state = JobState::Queued;
  std::uint64_t units_total = 0;
  std::uint64_t units_done = 0;     ///< includes units resumed from disk
  std::uint32_t shards_in_flight = 0;
  std::uint64_t submit_seq = 0;     ///< admission order
};

class Scheduler {
 public:
  struct Options {
    std::uint32_t units_per_shard = 4;
    std::uint32_t max_queued_jobs = 32;  ///< non-terminal jobs admitted
  };

  Scheduler() : Scheduler(Options()) {}
  explicit Scheduler(Options options);

  /// Admits a job whose *remaining* units are `units` (resumed units
  /// already excluded; `done` of them count toward progress totals).
  /// False = backpressure refusal, *why says so.
  bool submit(const std::string& job_id, unsigned max_shards,
              std::vector<std::string> units, std::uint64_t done = 0,
              std::string* why = nullptr);

  /// Next shard for the idle worker `worker_id`, honouring quotas and
  /// fairness. nullopt = nothing runnable right now.
  std::optional<Shard> nextShard(const std::string& worker_id);

  /// One unit of `job_id` was judged.
  void onUnitDone(const std::string& job_id);

  /// `worker_id` finished shard `index` of `job_id`. Returns the job's
  /// state after the event (Done once the last unit of the last shard
  /// lands).
  JobState onShardDone(const std::string& worker_id,
                       const std::string& job_id, std::uint32_t index);

  /// `worker_id` vanished (crash / closed fd). Every job that had a
  /// shard on it transitions to Failed and its queue is dropped;
  /// returns those job ids.
  std::vector<std::string> onWorkerGone(const std::string& worker_id);

  /// Cancels a job: queued shards are dropped; in-flight shards drain.
  /// False if unknown or already terminal.
  bool cancel(const std::string& job_id);

  std::optional<JobProgress> progress(const std::string& job_id) const;
  std::vector<JobProgress> allProgress() const;  ///< admission order

  /// No shard in flight and no shard queued (terminal jobs aside) —
  /// the daemon's cue for idle cache compaction / drain exit.
  bool idle() const;
  /// Non-terminal job count (backpressure accounting).
  std::uint32_t activeJobs() const;

 private:
  struct JobEntry {
    JobProgress prog;
    unsigned max_shards = 0;  ///< quota, 0 = uncapped
    std::deque<Shard> queued;
  };

  JobEntry* find(const std::string& job_id);
  bool terminal(const JobEntry& e) const {
    return e.prog.state == JobState::Done ||
           e.prog.state == JobState::Failed ||
           e.prog.state == JobState::Cancelled;
  }

  Options options_;
  std::uint64_t next_seq_ = 0;
  std::map<std::string, JobEntry> jobs_;
  /// worker -> shards it currently holds (job id, shard index).
  std::map<std::string, std::vector<std::pair<std::string, std::uint32_t>>>
      held_;
};

}  // namespace rvsym::serve
