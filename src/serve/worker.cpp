#include "serve/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "mut/campaign.hpp"
#include "mut/space.hpp"
#include "obs/bundle.hpp"
#include "obs/flightrec/crashdump.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "serve/job.hpp"
#include "serve/proto.hpp"
#include "solver/cachestore.hpp"
#include "solver/cexcache.hpp"
#include "solver/corpus.hpp"
#include "solver/options.hpp"
#include "solver/querycache.hpp"
#include "solver/telemetry.hpp"

namespace rvsym::serve {

namespace {

/// Everything one unit execution needs from the worker's long-lived
/// state.
struct WorkerState {
  obs::MetricsRegistry registry;
  solver::QueryCache qcache;
  solver::CexCache cexcache;
  std::unique_ptr<solver::CacheStore> store;
  /// Solver-query spans only (attachSpans, never attachMetrics: the
  /// fleet solver-query counter is shipped journal-aligned below so the
  /// scraped total provably equals the per-job journal sums).
  solver::SolverTelemetry telemetry;
  obs::SpanCollector spans;
};

/// Maps a job spec onto campaign options for judgeMutant. The scenario
/// and solver-opt strings were validated at submit time; unknown values
/// here (a hand-edited journal) degrade to the defaults.
mut::CampaignOptions campaignOptionsFor(const JobSpec& spec,
                                        const WorkerConfig& config,
                                        WorkerState& state) {
  mut::CampaignOptions opts;
  opts.jobs = 1;  // the daemon parallelizes across workers, not here
  opts.engine_jobs = config.engine_jobs;
  opts.min_instr_limit = spec.min_instr_limit;
  opts.max_instr_limit = spec.max_instr_limit;
  opts.max_paths_per_hunt = spec.max_paths_per_hunt;
  opts.max_seconds_per_hunt = spec.max_seconds_per_hunt;
  opts.num_symbolic_regs = spec.num_symbolic_regs;
  opts.scenario = spec.scenario;
  if (const auto c = obs::scenarioConstraint(spec.scenario))
    opts.instr_constraint = *c;
  solver::parseSolverOpt(spec.solver_opt, &opts.solver_opt);
  opts.shared_cex_cache = &state.cexcache;
  opts.metrics = &state.registry;
  opts.telemetry = &state.telemetry;
  return opts;
}

/// Resolves a mutate/verify unit id to its mutant. Verify units are
/// paper ids ("E0".."E9"); mutate units are space ids.
std::optional<mut::Mutant> unitMutant(const JobSpec& spec,
                                      const std::string& unit,
                                      std::string* error) {
  if (spec.kind == "verify") {
    for (const auto& pm : mut::paperMutants())
      if (unit == pm.paper_id) return pm.mutant;
    *error = "unknown paper mutant '" + unit + "'";
    return std::nullopt;
  }
  try {
    return mut::mutantById(unit);
  } catch (const std::out_of_range&) {
    *error = "unknown mutant id '" + unit + "'";
    return std::nullopt;
  }
}

/// Executes one unit and renders its record (the journal line, minus
/// the job/shard envelope the caller adds).
void runUnit(const JobSpec& spec, const std::string& unit,
             const WorkerConfig& config, WorkerState& state,
             obs::JsonWriter& w) {
  obs::Histogram& check_us = state.registry.histogram("solver.check_us");
  obs::Counter& qc_hits = state.registry.counter("qcache.hits");
  obs::Counter& qc_misses = state.registry.counter("qcache.misses");
  const std::uint64_t solves_before = check_us.count();
  const std::uint64_t hits_before = qc_hits.get();
  const std::uint64_t misses_before = qc_misses.get();

  if (spec.kind == "replay") {
    const auto start = std::chrono::steady_clock::now();
    expr::ExprBuilder eb;
    std::string err;
    const auto q =
        solver::loadQueryFile(eb, spec.corpus_dir + "/" + unit, &err);
    if (!q) {
      w.field("error", err);
      return;
    }
    solver::ReplayOptions ro;
    solver::parseSolverOpt(spec.solver_opt, &ro.solver_opt);
    ro.query_cache = &state.qcache;
    ro.cex_cache = &state.cexcache;
    const solver::ReplayOutcome out = solver::replayQueryOpt(eb, *q, ro);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    w.field("verdict", solver::verdictName(out.verdict));
    w.field("via", out.via);
    w.field("t_seconds", seconds);
    w.field("t_solve_us", out.solve_us);
    w.field("qc_sat_solves",
            std::uint64_t{std::string_view(out.via) == "solve" ? 1u : 0u});
    return;
  }

  std::string err;
  const auto m = unitMutant(spec, unit, &err);
  if (!m) {
    w.field("error", err);
    return;
  }
  const mut::CampaignOptions opts =
      campaignOptionsFor(spec, config, state);
  const mut::MutantResult r = mut::judgeMutant(*m, opts, &state.qcache, {});
  w.field("verdict", mut::verdictName(r.verdict));
  if (r.verdict == mut::Verdict::Killed) {
    w.field("kill_instr_limit", r.kill_instr_limit);
    w.field("kill_message", r.kill_message);
  }
  w.field("instructions", r.instructions);
  w.field("paths", r.paths);
  w.field("partial_paths", r.partial_paths);
  w.field("solver_checks", r.solver_checks);
  // Mirror the journal field into the registry so the fleet-wide
  // rvsym_solver_queries_total exposition equals the journal sums
  // exactly (telemetry's own counter also covers checks the cache
  // layers absorbed, which the journal does not — hence the mirror).
  state.registry.counter("solver.queries").add(r.solver_checks);
  w.field("t_seconds", r.seconds);
  w.field("qc_sat_solves", check_us.count() - solves_before);
  w.field("qc_hits", qc_hits.get() - hits_before);
  w.field("qc_misses", qc_misses.get() - misses_before);
}

/// One metrics_report frame: the full registry snapshot (cumulative
/// over the worker's lifetime — the daemon keeps the latest per worker
/// and sums across workers, DESIGN.md §14).
bool sendMetricsReport(int fd, WorkerState& state, const WorkerConfig& config,
                       const std::string& job, std::uint64_t shard) {
  obs::JsonWriter w;
  w.beginObject();
  w.field("ev", "metrics_report");
  w.field("tag", config.tag);
  w.field("job", job);
  w.field("shard", shard);
  w.key("registry").rawValue(state.registry.toJson());
  w.endObject();
  return writeFrame(fd, w.str());
}

/// One spans_report frame: drains the collector. epoch_us anchors the
/// batch on the machine-wide steady clock so the daemon-side trace
/// files merge onto one timeline.
bool sendSpansReport(int fd, WorkerState& state, const WorkerConfig& config,
                     const std::string& job, std::uint64_t shard) {
  const std::vector<obs::Span> batch = state.spans.drain();
  if (batch.empty()) return true;
  obs::JsonWriter w;
  w.beginObject();
  w.field("ev", "spans_report");
  w.field("tag", config.tag);
  w.field("job", job);
  w.field("shard", shard);
  w.field("epoch_us", state.spans.epochSteadyUs());
  w.key("spans").beginArray();
  for (const obs::Span& s : batch) {
    w.beginObject();
    w.field("name", s.name);
    w.field("cat", s.cat);
    w.field("tid", static_cast<std::uint64_t>(s.tid));
    w.field("ts_us", s.ts_us);
    w.field("dur_us", s.dur_us);
    if (!s.args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : s.args) w.key(k).rawValue(v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return writeFrame(fd, w.str());
}

}  // namespace

int workerMain(int fd, const WorkerConfig& config) {
  WorkerState state;
  state.qcache.attachMetrics(state.registry);
  state.cexcache.attachMetrics(state.registry);
  state.telemetry.attachSpans(&state.spans);

  solver::CacheStore::LoadStats loaded;
  if (!config.cache_dir.empty()) {
    state.store = std::make_unique<solver::CacheStore>(config.cache_dir,
                                                       config.tag);
    loaded = state.store->load(&state.qcache, &state.cexcache);
  }

  // Process mode: a judging crash dumps a flight-recorder bundle, then
  // the dead socket tells the daemon to fail the job — the daemon
  // itself never sees the signal.
  obs::flightrec::ForensicsSession forensics;
  if (!config.crash_dir.empty()) {
    obs::flightrec::ForensicsOptions fo;
    fo.crash_dir = config.crash_dir;
    fo.tool = "rvsym-serve-worker";
    std::string err;
    if (forensics.install(fo, &err)) {
      obs::flightrec::setForensicsMetrics(&state.registry);
      obs::flightrec::setThreadName("serve-worker");
    } else {
      std::fprintf(stderr, "serve-worker: forensics: %s\n", err.c_str());
    }
  }

  unsigned crash_after = config.fail_after_units;
  bool crash_hard = false;
  if (const char* env = std::getenv("RVSYM_SERVE_CRASH_AFTER_UNITS")) {
    crash_after = static_cast<unsigned>(std::atoi(env));
    crash_hard = true;
  }

  {
    obs::JsonWriter hello;
    hello.beginObject();
    hello.field("ev", "hello");
    hello.field("tag", config.tag);
    hello.field("loaded_verdicts", loaded.verdicts);
    hello.field("loaded_models", loaded.models);
    hello.field("loaded_cores", loaded.cores);
    hello.endObject();
    if (!writeFrame(fd, hello.str())) return 1;
  }

  std::uint64_t units_done = 0;
  for (;;) {
    std::string err;
    const auto frame = readFrame(fd, &err);
    if (!frame) {
      if (!err.empty())
        std::fprintf(stderr, "serve-worker: %s\n", err.c_str());
      return err.empty() ? 0 : 1;
    }
    const auto msg = obs::analyze::parseJson(*frame);
    if (!msg) continue;
    const std::string cmd = msg->getString("cmd").value_or("");
    if (cmd == "exit") {
      if (state.store) state.store->absorb(&state.qcache, &state.cexcache);
      return 0;
    }
    if (cmd != "shard") continue;

    const std::string job = msg->getString("job").value_or("");
    const std::uint64_t shard = msg->getU64("shard").value_or(0);
    const obs::analyze::JsonValue* spec_v = msg->find("spec");
    std::optional<JobSpec> spec;
    if (spec_v) spec = JobSpec::fromJson(*spec_v);
    std::vector<std::string> units;
    if (const auto* arr = msg->find("units"); arr && arr->isArray())
      for (const auto& u : arr->items())
        if (u.isString()) units.push_back(u.asString());

    const std::uint64_t shard_t0 = state.spans.nowUs();
    for (const std::string& unit : units) {
      const std::uint64_t unit_t0 = state.spans.nowUs();
      obs::JsonWriter w;
      w.beginObject();
      w.field("ev", "unit");
      w.field("job", job);
      w.field("shard", shard);
      w.field("unit", unit);
      if (spec)
        runUnit(*spec, unit, config, state, w);
      else
        w.field("error", "shard carried no parsable spec");
      w.endObject();
      if (!writeFrame(fd, w.str())) return 1;
      state.registry.counter("serve.units").add(1);
      {
        obs::Span s;
        s.name = "unit " + unit;
        s.cat = "phase";
        s.tid = state.spans.threadTrack();
        s.ts_us = unit_t0;
        s.dur_us = state.spans.nowUs() - unit_t0;
        s.args = {{"job", "\"" + obs::jsonEscape(job) + "\""},
                  {"shard", std::to_string(shard)}};
        state.spans.add(std::move(s));
      }
      // Per-unit shipping keeps the daemon's aggregate current: when a
      // job finalizes, every one of its units' counters has landed.
      if (!sendMetricsReport(fd, state, config, job, shard)) return 1;
      ++units_done;
      if (crash_after != 0 && units_done >= crash_after) {
        // Deterministic mid-shard death for the resilience tests: a
        // real fatal signal in process mode (forensics bundles it), a
        // dropped connection in thread mode.
        if (crash_hard) std::raise(SIGSEGV);
        ::close(fd);
        return 3;
      }
    }

    // Persist what this shard learned before reporting it done, so a
    // warm restart never re-solves what a finished shard already paid
    // for.
    solver::CacheStore::AbsorbStats absorbed;
    if (state.store)
      absorbed = state.store->absorb(&state.qcache, &state.cexcache);
    // Job and shard envelope spans over the whole judging interval:
    // added parent-first at the same (tid, ts), so the sorted trace —
    // and the cross-process merge — nests job -> shard -> unit ->
    // solver-query on this worker's track.
    {
      const std::uint64_t now = state.spans.nowUs();
      obs::Span js;
      js.name = "job " + job;
      js.cat = "phase";
      js.tid = state.spans.threadTrack();
      js.ts_us = shard_t0;
      js.dur_us = now - shard_t0;
      js.args = {{"job", "\"" + obs::jsonEscape(job) + "\""}};
      obs::Span ss;
      ss.name = "shard " + job + "/" + std::to_string(shard);
      ss.cat = "phase";
      ss.tid = js.tid;
      ss.ts_us = shard_t0;
      ss.dur_us = js.dur_us;
      ss.args = {{"job", "\"" + obs::jsonEscape(job) + "\""},
                 {"shard", std::to_string(shard)},
                 {"units", std::to_string(units.size())}};
      state.spans.add(std::move(js));
      state.spans.add(std::move(ss));
    }
    if (!sendSpansReport(fd, state, config, job, shard)) return 1;
    obs::JsonWriter w;
    w.beginObject();
    w.field("ev", "shard_done");
    w.field("job", job);
    w.field("shard", shard);
    w.field("absorbed_verdicts", absorbed.verdicts);
    w.field("absorbed_models", absorbed.models);
    w.field("absorbed_cores", absorbed.cores);
    w.endObject();
    if (!writeFrame(fd, w.str())) return 1;
  }
}

}  // namespace rvsym::serve
