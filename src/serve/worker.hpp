// Serve worker — executes shards the daemon assigns.
//
// One worker = one judging context: a QueryCache/CexCache pair warmed
// from the persistent cache store at startup and shared across every
// shard the worker runs (mutants replay near-identical decode
// cascades, so cross-job verdict reuse is the service's whole point),
// a metrics registry whose solver.check_us histogram counts the real
// SAT solves behind each unit, and — in process mode — an armed crash
// forensics session so a judging crash produces a bundle and a dead
// socket, not a dead daemon.
//
// workerMain() speaks rvsym-serve-v1 over a single fd; it is the body
// of both deployment shapes: `rvsym-serve worker` child processes
// (fork/exec, fd = socketpair end) and in-process worker threads
// (tests; fd = one end of socketpair(2), same code path).
#pragma once

#include <string>

namespace rvsym::serve {

struct WorkerConfig {
  std::string cache_dir;  ///< persistent cache store ("" = none)
  std::string tag;        ///< cache-store segment tag (unique per worker)
  std::string crash_dir;  ///< arm crash forensics ("" = off / thread mode)
  unsigned engine_jobs = 1;  ///< exploration threads per hunt
  /// Test hook: after this many units, simulate a judging crash by
  /// closing the connection (thread mode) instead of raising a fatal
  /// signal. 0 = off. Process mode uses RVSYM_SERVE_CRASH_AFTER_UNITS
  /// with a real SIGSEGV instead.
  unsigned fail_after_units = 0;
};

/// Runs the worker protocol loop on `fd` until an exit command or EOF.
/// Returns the process exit code (0 on clean exit).
int workerMain(int fd, const WorkerConfig& config);

}  // namespace rvsym::serve
