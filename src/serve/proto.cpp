#include "serve/proto.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rvsym::serve {

namespace {

void setError(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Writes all of `data`, riding out EINTR and partial writes.
bool writeAll(int fd, const char* data, std::size_t size, std::string* error) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      setError(error, errnoString("write"));
      return false;
    }
    if (n == 0) {
      setError(error, "write returned 0");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `size` bytes. Returns 1 on success, 0 on EOF before
/// any byte (clean close), -1 on error / EOF mid-buffer.
int readAll(int fd, char* data, std::size_t size, std::string* error) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      setError(error, errnoString("read"));
      return -1;
    }
    if (n == 0) {
      if (off == 0) return 0;
      setError(error, "connection closed mid-frame");
      return -1;
    }
    off += static_cast<std::size_t>(n);
  }
  return 1;
}

/// Validates a decoded length prefix.
bool checkLength(std::uint32_t len, std::string* error) {
  if (len == 0) {
    setError(error, "zero-length frame");
    return false;
  }
  if (len > kMaxFrameBytes) {
    setError(error, "oversized frame (" + std::to_string(len) + " bytes, max " +
                        std::to_string(kMaxFrameBytes) + ")");
    return false;
  }
  return true;
}

std::uint32_t decodeLength(const char* b) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(b[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b[3]));
}

}  // namespace

std::string frameHeader(std::uint32_t payload_size) {
  std::string h(4, '\0');
  h[0] = static_cast<char>((payload_size >> 24) & 0xff);
  h[1] = static_cast<char>((payload_size >> 16) & 0xff);
  h[2] = static_cast<char>((payload_size >> 8) & 0xff);
  h[3] = static_cast<char>(payload_size & 0xff);
  return h;
}

bool writeFrame(int fd, std::string_view payload, std::string* error) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) {
    setError(error, "refusing to send frame of " +
                        std::to_string(payload.size()) + " bytes");
    return false;
  }
  // One buffer so small frames go out in a single write (and a single
  // packet on tcp).
  std::string wire = frameHeader(static_cast<std::uint32_t>(payload.size()));
  wire.append(payload);
  return writeAll(fd, wire.data(), wire.size(), error);
}

std::optional<std::string> readFrame(int fd, std::string* error) {
  setError(error, "");
  char hdr[4];
  const int got = readAll(fd, hdr, sizeof hdr, error);
  if (got <= 0) return std::nullopt;  // clean EOF (0) or error (-1)
  const std::uint32_t len = decodeLength(hdr);
  if (!checkLength(len, error)) return std::nullopt;
  std::string payload(len, '\0');
  if (readAll(fd, payload.data(), len, error) != 1) {
    if (error && error->empty()) setError(error, "connection closed mid-frame");
    return std::nullopt;
  }
  return payload;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Shed the consumed prefix before growing, so a long-lived connection
  // does not accumulate every frame it ever received.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

std::optional<std::string> FrameDecoder::next(std::string* error) {
  setError(error, "");
  if (corrupt_) {
    setError(error, "frame stream corrupt");
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const std::uint32_t len = decodeLength(buf_.data() + pos_);
  if (!checkLength(len, error)) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len))
    return std::nullopt;
  std::string payload = buf_.substr(pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return payload;
}

std::string Endpoint::spec() const {
  if (kind == Kind::Tcp) return "tcp:" + std::to_string(port);
  return "unix:" + path;
}

std::optional<Endpoint> parseEndpoint(const std::string& spec,
                                      std::string* error) {
  Endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::Tcp;
    const std::string digits = spec.substr(4);
    if (digits.empty() || digits.size() > 5) {
      setError(error, "bad tcp port in '" + spec + "'");
      return std::nullopt;
    }
    unsigned long port = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        setError(error, "bad tcp port in '" + spec + "'");
        return std::nullopt;
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
    }
    if (port == 0 || port > 65535) {
      setError(error, "tcp port out of range in '" + spec + "'");
      return std::nullopt;
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  ep.kind = Endpoint::Kind::Unix;
  ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (ep.path.empty()) {
    setError(error, "empty unix socket path in '" + spec + "'");
    return std::nullopt;
  }
  if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    setError(error, "unix socket path too long: " + ep.path);
    return std::nullopt;
  }
  return ep;
}

int listenOn(const Endpoint& ep, std::string* error) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      setError(error, errnoString("socket"));
      return -1;
    }
    ::unlink(ep.path.c_str());  // stale socket from a previous daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, 64) < 0) {
      setError(error, errnoString(("bind/listen " + ep.path).c_str()));
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, errnoString("socket"));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    setError(error, errnoString(("bind/listen port " +
                                 std::to_string(ep.port)).c_str()));
    ::close(fd);
    return -1;
  }
  return fd;
}

int connectTo(const Endpoint& ep, std::string* error) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      setError(error, errnoString("socket"));
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      setError(error, errnoString(("connect " + ep.path).c_str()));
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    setError(error, errnoString("socket"));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    setError(error, errnoString(("connect port " +
                                 std::to_string(ep.port)).c_str()));
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace rvsym::serve
