// Daemon — the rvsym-serve campaign server.
//
// One single-threaded poll() loop owns everything: the listen socket,
// every client connection, and one socket per worker. Workers are the
// only place judging happens — by default each is a forked child
// process running workerMain() (a judging crash kills the child, the
// daemon sees a dead socket, bundles were already written by the
// worker's own forensics session, and the job is marked failed), or an
// in-process thread in `thread_workers` mode (tests, TSan).
//
// Durability: the JobStore journal is appended and flushed per unit
// verdict, so kill -9 of the daemon at any instant loses at most the
// line in flight. init() replays the store: unfinished jobs are
// re-admitted with their judged units skipped, and because unit
// verdicts are deterministic the resumed job converges to the same
// final verdict set the uninterrupted run would have produced.
//
// The persistent cache store is the workers' to read and append;
// the daemon's only cache-store duty is compaction, which it runs when
// the scheduler has been idle for `idle_compact_s` — exactly when no
// worker can be mid-append.
#pragma once

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/proto.hpp"
#include "serve/scheduler.hpp"

namespace rvsym::serve {

struct DaemonOptions {
  Endpoint endpoint;
  std::string state_dir;          ///< job store root (required)
  std::string cache_dir;          ///< persistent cache store ("" = none)
  std::string crash_dir;          ///< workers' forensics bundles ("" = off)
  /// Optional second listen endpoint answering plain HTTP GETs with the
  /// Prometheus text exposition, so external scrapers never need the
  /// frame protocol. Unset = off.
  std::optional<Endpoint> metrics_listen;
  /// When set, the daemon maintains Chrome-trace files here —
  /// daemon.trace.json plus worker-<id>.trace.json from shipped
  /// spans_report batches — for `rvsym-report trace-events --merge`.
  std::string trace_dir;
  /// Append one rvsym-runs-v1 record per finalized job to
  /// <state_dir>/runs.rvhx (DESIGN.md §14).
  bool history = true;
  unsigned workers = 2;
  unsigned engine_jobs = 1;       ///< exploration threads per hunt
  Scheduler::Options sched{};
  double idle_compact_s = 2.0;    ///< idle seconds before compaction
  /// Workers as in-process threads instead of forked children (tests /
  /// TSan; crashes are simulated by dropping the socket).
  bool thread_workers = false;
  /// Test hook for thread workers: drop the connection after N units.
  unsigned worker_fail_after_units = 0;
  /// Graceful-stop flag (a SIGTERM handler sets it); polled each loop.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  bool verbose = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  /// Binds the endpoint, loads + resumes the job store, spawns workers.
  bool init(std::string* error);

  /// Serves until a drain completes or the stop flag is raised.
  /// Returns the process exit code.
  int run();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace rvsym::serve
