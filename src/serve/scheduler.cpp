#include "serve/scheduler.hpp"

#include <algorithm>

namespace rvsym::serve {

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

Scheduler::Scheduler(Options options) : options_(options) {
  if (options_.units_per_shard == 0) options_.units_per_shard = 1;
}

Scheduler::JobEntry* Scheduler::find(const std::string& job_id) {
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

bool Scheduler::submit(const std::string& job_id, unsigned max_shards,
                       std::vector<std::string> units, std::uint64_t done,
                       std::string* why) {
  if (jobs_.count(job_id)) {
    if (why) *why = "job " + job_id + " already scheduled";
    return false;
  }
  if (activeJobs() >= options_.max_queued_jobs) {
    if (why)
      *why = "busy: " + std::to_string(activeJobs()) +
             " jobs already queued (max " +
             std::to_string(options_.max_queued_jobs) + ")";
    return false;
  }
  JobEntry e;
  e.prog.id = job_id;
  e.prog.units_total = done + units.size();
  e.prog.units_done = done;
  e.prog.submit_seq = next_seq_++;
  e.max_shards = max_shards;
  std::uint32_t index = 0;
  for (std::size_t i = 0; i < units.size();
       i += options_.units_per_shard) {
    Shard s;
    s.job_id = job_id;
    s.index = index++;
    const std::size_t end =
        std::min(units.size(), i + options_.units_per_shard);
    s.units.assign(units.begin() + static_cast<std::ptrdiff_t>(i),
                   units.begin() + static_cast<std::ptrdiff_t>(end));
    e.queued.push_back(std::move(s));
  }
  // A job admitted with every unit already resumed is immediately done.
  e.prog.state = e.queued.empty() ? JobState::Done : JobState::Queued;
  jobs_.emplace(job_id, std::move(e));
  return true;
}

std::optional<Shard> Scheduler::nextShard(const std::string& worker_id) {
  JobEntry* best = nullptr;
  for (auto& [id, e] : jobs_) {
    if (terminal(e) || e.queued.empty()) continue;
    if (e.max_shards != 0 && e.prog.shards_in_flight >= e.max_shards)
      continue;  // per-job quota
    if (!best ||
        e.prog.shards_in_flight < best->prog.shards_in_flight ||
        (e.prog.shards_in_flight == best->prog.shards_in_flight &&
         e.prog.submit_seq < best->prog.submit_seq))
      best = &e;
  }
  if (!best) return std::nullopt;
  Shard s = std::move(best->queued.front());
  best->queued.pop_front();
  ++best->prog.shards_in_flight;
  best->prog.state = JobState::Running;
  held_[worker_id].emplace_back(s.job_id, s.index);
  return s;
}

void Scheduler::onUnitDone(const std::string& job_id) {
  if (JobEntry* e = find(job_id)) ++e->prog.units_done;
}

JobState Scheduler::onShardDone(const std::string& worker_id,
                                const std::string& job_id,
                                std::uint32_t index) {
  auto held = held_.find(worker_id);
  if (held != held_.end()) {
    auto& shards = held->second;
    shards.erase(std::remove(shards.begin(), shards.end(),
                             std::make_pair(job_id, index)),
                 shards.end());
  }
  JobEntry* e = find(job_id);
  if (!e) return JobState::Failed;
  if (e->prog.shards_in_flight > 0) --e->prog.shards_in_flight;
  if (!terminal(*e) && e->queued.empty() &&
      e->prog.shards_in_flight == 0)
    e->prog.state = JobState::Done;
  return e->prog.state;
}

std::vector<std::string> Scheduler::onWorkerGone(
    const std::string& worker_id) {
  std::vector<std::string> failed;
  const auto held = held_.find(worker_id);
  if (held == held_.end()) return failed;
  for (const auto& [job_id, index] : held->second) {
    (void)index;
    JobEntry* e = find(job_id);
    if (!e || terminal(*e)) continue;
    e->prog.state = JobState::Failed;
    e->queued.clear();
    if (e->prog.shards_in_flight > 0) --e->prog.shards_in_flight;
    failed.push_back(job_id);
  }
  held_.erase(held);
  return failed;
}

bool Scheduler::cancel(const std::string& job_id) {
  JobEntry* e = find(job_id);
  if (!e || terminal(*e)) return false;
  e->queued.clear();
  e->prog.state = JobState::Cancelled;
  return true;
}

std::optional<JobProgress> Scheduler::progress(
    const std::string& job_id) const {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.prog;
}

std::vector<JobProgress> Scheduler::allProgress() const {
  std::vector<JobProgress> all;
  for (const auto& [id, e] : jobs_) all.push_back(e.prog);
  std::sort(all.begin(), all.end(),
            [](const JobProgress& a, const JobProgress& b) {
              return a.submit_seq < b.submit_seq;
            });
  return all;
}

bool Scheduler::idle() const {
  for (const auto& [id, e] : jobs_) {
    if (e.prog.state == JobState::Done ||
        e.prog.state == JobState::Failed)
      continue;
    if (e.prog.shards_in_flight > 0 || !e.queued.empty()) return false;
  }
  return true;
}

std::uint32_t Scheduler::activeJobs() const {
  std::uint32_t n = 0;
  for (const auto& [id, e] : jobs_)
    if (!(e.prog.state == JobState::Done ||
          e.prog.state == JobState::Failed ||
          e.prog.state == JobState::Cancelled))
      ++n;
  return n;
}

}  // namespace rvsym::serve
