#include "serve/jobstore.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/analyze/jsonl.hpp"
#include "obs/json.hpp"

namespace rvsym::serve {

namespace {

namespace fs = std::filesystem;

/// Drops torn bytes after the last complete line (same repair the
/// campaign runner applies before resuming a journal).
void truncateToLastNewline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t nl = text.rfind('\n');
  const std::size_t keep = nl == std::string::npos ? 0 : nl + 1;
  std::error_code ec;
  fs::resize_file(path, keep, ec);
}

void completeFinalLine(const std::string& path) {
  if (std::FILE* f = std::fopen(path.c_str(), "a")) {
    std::fputs("\n", f);
    std::fclose(f);
  }
}

}  // namespace

JobStore::JobStore(std::string state_dir)
    : state_dir_(std::move(state_dir)), jobs_dir_(state_dir_ + "/jobs") {
  std::error_code ec;
  fs::create_directories(jobs_dir_, ec);
}

std::string JobStore::journalPath(const std::string& id) const {
  return jobs_dir_ + "/" + id + ".jsonl";
}

bool JobStore::createJob(const std::string& id, const JobSpec& spec,
                         std::string* error) {
  const std::string path = journalPath(id);
  if (fs::exists(path)) {
    if (error) *error = "job " + id + " already exists";
    return false;
  }
  obs::JsonWriter w;
  w.beginObject();
  w.field("rvsym_serve_job", std::uint64_t{1});
  w.field("id", id);
  w.key("spec").rawValue(spec.toJson());
  w.endObject();
  return appendLine(id, w.str());
}

bool JobStore::appendLine(const std::string& id,
                          const std::string& json_line) {
  std::FILE* f = std::fopen(journalPath(id).c_str(), "a");
  if (!f) return false;
  const bool ok =
      std::fwrite(json_line.data(), 1, json_line.size(), f) ==
          json_line.size() &&
      std::fputc('\n', f) != EOF && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

std::vector<LoadedJob> JobStore::loadAll(std::vector<std::string>* warnings) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(jobs_dir_, ec)) {
    if (ent.is_regular_file() && ent.path().extension() == ".jsonl")
      files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<LoadedJob> jobs;
  for (const fs::path& path : files) {
    LoadedJob job;
    bool saw_header = false;
    bool bad_header = false;
    std::size_t malformed = 0;
    bool torn = false;
    // Line-level scan so records are kept verbatim (re-rendering parsed
    // values would not be byte-identical).
    const auto stats = obs::analyze::forEachJsonlLine(
        path.string(),
        [&](std::string_view line, std::size_t, bool truncated) {
          if (line.empty()) return;
          const auto v = obs::analyze::parseJson(line);
          if (!v) {
            // A torn tail is a writer killed mid-line, not corruption.
            if (truncated)
              torn = true;
            else
              ++malformed;
            return;
          }
          if (!saw_header) {
            saw_header = true;
            if (!v->getU64("rvsym_serve_job").has_value()) {
              bad_header = true;
              return;
            }
            job.id = v->getString("id").value_or("");
            const auto* spec = v->find("spec");
            std::optional<JobSpec> parsed;
            if (spec) parsed = JobSpec::fromJson(*spec);
            if (parsed)
              job.spec = std::move(*parsed);
            else
              bad_header = true;
            return;
          }
          if (bad_header) return;
          const auto ev = v->getString("ev");
          if (ev == "unit") {
            const auto unit = v->getString("unit");
            if (!unit) return;
            // First verdict wins — a resumed job may re-judge a unit
            // whose record line was torn, never one already committed.
            job.unit_records.emplace(*unit, std::string(line));
          } else if (ev == "final") {
            job.finished = true;
            job.final_record = std::string(line);
          }
        });
    if (!stats || bad_header || !saw_header || job.id.empty()) {
      if (warnings)
        warnings->push_back(path.string() +
                            ": not a serve job journal, skipped");
      continue;
    }
    obs::analyze::JsonlStats scan = *stats;
    scan.malformed = malformed;
    scan.torn_tail = torn;
    const std::string note = scan.describe(path.string());
    if (!note.empty()) {
      job.repair_note = note;
      if (warnings) warnings->push_back(note);
      // Two-case tail repair before this journal is appended to again.
      if (scan.torn_tail)
        truncateToLastNewline(path.string());
      else if (scan.truncated_tail)
        completeFinalLine(path.string());
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string JobStore::nextJobId() const {
  std::uint64_t next = 0;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(jobs_dir_, ec)) {
    const std::string stem = ent.path().stem().string();
    if (stem.size() < 2 || stem[0] != 'j') continue;
    std::uint64_t n = 0;
    bool ok = true;
    for (std::size_t i = 1; i < stem.size(); ++i) {
      if (stem[i] < '0' || stem[i] > '9') {
        ok = false;
        break;
      }
      n = n * 10 + static_cast<std::uint64_t>(stem[i] - '0');
    }
    if (ok) next = std::max(next, n + 1);
  }
  return "j" + std::to_string(next);
}

}  // namespace rvsym::serve
