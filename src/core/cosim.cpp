#include "core/cosim.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/phase.hpp"

#include "rv32/fields.hpp"

namespace rvsym::core {

using expr::ExprRef;
using symex::ExecState;

CoSimulation::CoSimulation(expr::ExprBuilder& eb, CosimConfig config)
    : eb_(eb), config_(std::move(config)) {
  if (config_.metrics) {
    rtl_instr_us_ = &config_.metrics->histogram("cosim.rtl_instr_us");
    iss_step_us_ = &config_.metrics->histogram("cosim.iss_step_us");
  }
}

std::string formatMismatchMessage(const Mismatch& m, std::uint32_t pc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", pc);
  return "voter mismatch [" + m.field + "] pc=" + buf + ": " + m.detail;
}

bool parseMismatchMessage(const std::string& message, std::string& field,
                          std::uint32_t& pc) {
  const auto lb = message.find('[');
  const auto rb = message.find(']');
  const auto pcpos = message.find("pc=");
  if (lb == std::string::npos || rb == std::string::npos ||
      pcpos == std::string::npos)
    return false;
  field = message.substr(lb + 1, rb - lb - 1);
  pc = static_cast<std::uint32_t>(
      std::strtoul(message.c_str() + pcpos + 3, nullptr, 16));
  return true;
}

InstrConstraint CoSimulation::blockSystemInstructions() {
  return [](ExecState& st, const ExprRef& instr) {
    expr::ExprBuilder& eb = st.builder();
    st.assume(eb.ne(rv32::sym::opcode(eb, instr), eb.constant(0x73, 7)));
  };
}

InstrConstraint CoSimulation::onlyMajorOpcode(std::uint32_t opcode7) {
  return [opcode7](ExecState& st, const ExprRef& instr) {
    expr::ExprBuilder& eb = st.builder();
    st.assume(eb.eq(rv32::sym::opcode(eb, instr), eb.constant(opcode7, 7)));
  };
}

InstrConstraint CoSimulation::onlySystemInstructions() {
  return onlyMajorOpcode(0x73);
}

InstrConstraint CoSimulation::onlyCsrAddress(std::uint16_t csr_addr) {
  return [csr_addr](ExecState& st, const ExprRef& instr) {
    expr::ExprBuilder& eb = st.builder();
    st.assume(eb.eq(rv32::sym::opcode(eb, instr), eb.constant(0x73, 7)));
    // funct3 != 0 keeps the word a CSR access (not ECALL/WFI/...).
    st.assume(eb.ne(rv32::sym::funct3(eb, instr), eb.constant(0, 3)));
    st.assume(eb.eq(rv32::sym::csrAddr(eb, instr),
                    eb.constant(csr_addr, 12)));
  };
}

void CoSimulation::runPath(ExecState& st) {
  // Fresh testbench per path (the engine replays from reset).
  InitialImage image;
  SymbolicInstrMemory imem(config_.instr_constraint);
  SymbolicDataMemory rtl_mem(image);
  SymbolicDataMemory iss_mem(image);

  rtl::RtlConfig rtl_cfg = config_.rtl;
  rtl_cfg.faults = rtl_cfg.faults | config_.faults;
  rtl::MicroRv32Core core(eb_, rtl_cfg);
  // E0-E2: clear decode-table mask bits (decoder don't-cares).
  for (const CosimConfig::DecodeDontCare& dc : config_.decode_dont_cares)
    for (rv32::DecodePattern& p : core.decodeTableMut())
      if (p.op == dc.op) p.mask &= ~(1u << dc.bit);

  iss::Iss iss(eb_, imem, iss_mem, config_.iss);
  Voter voter;
  RvfiMonitor rtl_monitor;
  RvfiMonitor iss_monitor;

  // Sliced symbolic registers: the same symbolic word goes into both
  // register files so only genuine behavioural differences can diverge.
  for (unsigned i = 1; i <= config_.num_symbolic_regs && i < 32; ++i) {
    const ExprRef v = st.makeSymbolic("reg_x" + std::to_string(i), 32);
    core.regs().set(eb_, i, v);
    iss.regs().set(eb_, i, v);
  }

  if (config_.post_init_hook) config_.post_init_hook(st);
  if (config_.on_core_built) config_.on_core_built(core);

  using ObsClock = std::chrono::steady_clock;
  // Accumulated RTL time since the last retirement: the RTL side of a
  // "per-instruction step" spans several clock ticks. Timed when either
  // consumer wants it: the registry histograms, or the trace sink (the
  // per-path t_rtl_us / t_iss_us attribution fields at path_end).
  const bool time_steps = rtl_instr_us_ != nullptr || st.tracingEnabled();
  std::uint64_t rtl_accum_us = 0;

  unsigned retired = 0;
  const unsigned waits = config_.bus_wait_states;
  unsigned ibus_delay = waits;
  unsigned dbus_delay = waits;
  const unsigned cycle_limit =
      config_.cycle_limit != 0
          ? config_.cycle_limit
          : (40 + 24 * waits) * config_.instr_limit + 24;

  for (unsigned cycle = 0; cycle < cycle_limit; ++cycle) {
    // Testbench interrupt injection: raise the line on both models.
    if (config_.irq_line >= 0 && cycle == config_.irq_at_cycle) {
      core.csrs().setInterruptLine(static_cast<unsigned>(config_.irq_line),
                                   true);
      iss.csrs().setInterruptLine(static_cast<unsigned>(config_.irq_line),
                                  true);
    }
    {
      const obs::PhaseTimer rtl_phase(st.profiler(), "rtl");
      if (time_steps) {
        const auto t0 = ObsClock::now();
        core.tick(st);
        rtl_accum_us += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                ObsClock::now() - t0)
                .count());
      } else {
        core.tick(st);
      }
    }

    // --- IBus protocol: answer a fetch, hold ready for one cycle. ---------
    if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
      if (ibus_delay > 0) {
        --ibus_delay;  // wait state: core stalls in WaitInstr
      } else {
        core.ibus.instruction = imem.fetch(st, core.ibus.address);
        core.ibus.instruction_ready = true;
        ibus_delay = waits;
      }
    } else if (!core.ibus.fetch_enable) {
      core.ibus.instruction_ready = false;
    }

    // --- DBus protocol: strobe-based, ready for one cycle. -----------------
    if (core.dbus.enable && !core.dbus.data_ready) {
      if (dbus_delay > 0) {
        --dbus_delay;  // wait state: core stalls in MemWait
      } else {
        dbus_delay = waits;
        if (core.dbus.write) {
          rtl_mem.storeStrobed(st, core.dbus.address, core.dbus.strobe,
                               core.dbus.wdata);
          core.dbus.rdata = eb_.constant(0, 32);
        } else {
          core.dbus.rdata =
              rtl_mem.loadStrobed(st, core.dbus.address, core.dbus.strobe);
        }
        core.dbus.data_ready = true;
      }
    } else if (!core.dbus.enable) {
      core.dbus.data_ready = false;
    }

    // --- Voter: on RTL retirement, step the ISS and compare. ---------------
    if (core.rvfi.valid) {
      st.countInstruction();
      if (time_steps) {
        if (rtl_instr_us_) rtl_instr_us_->record(rtl_accum_us);
        st.addTime("rtl", rtl_accum_us);
        rtl_accum_us = 0;
      }
      const auto iss_t0 =
          time_steps ? ObsClock::now() : ObsClock::time_point{};
      const iss::RetireInfo iss_result = [&] {
        const obs::PhaseTimer iss_phase(st.profiler(), "iss");
        return iss.step(st);
      }();
      if (time_steps) {
        const auto iss_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                ObsClock::now() - iss_t0)
                .count());
        if (iss_step_us_) iss_step_us_->record(iss_us);
        st.addTime("iss", iss_us);
      }
      // Trap-cause coverage: the ISS's trap decision is concrete control
      // state, so the tag is deterministic across jobs.
      if (iss_result.trap)
        st.addTag("trap:" + std::to_string(iss_result.cause));
      if (config_.on_retire) config_.on_retire(st, core.rvfi.info, iss_result);
      if (config_.enable_rvfi_monitor) {
        if (auto v = rtl_monitor.check(st, core.rvfi.info))
          st.fail("rvfi monitor (rtl): " + *v);
        if (auto v = iss_monitor.check(st, iss_result))
          st.fail("rvfi monitor (iss): " + *v);
      }
      std::optional<Mismatch> mismatch;
      {
        const obs::PhaseTimer voter_phase(st.profiler(), "voter");
        mismatch = voter.compare(st, core.rvfi.info, iss_result);
      }
      if (std::optional<Mismatch>& m = mismatch; m) {
        std::uint32_t pc = 0;
        if (core.rvfi.info.pc && core.rvfi.info.pc->isConstant())
          pc = static_cast<std::uint32_t>(core.rvfi.info.pc->constantValue());
        char pc_buf[16];
        std::snprintf(pc_buf, sizeof pc_buf, "%08x", pc);
        RVSYM_TRACE_PATH(st, obs::TraceEvent("voter")
                                 .str("verdict", "mismatch")
                                 .str("field", m->field)
                                 .str("pc", pc_buf)
                                 .str("detail", m->detail));
        st.fail(formatMismatchMessage(*m, pc));
      }
      if (++retired >= config_.instr_limit) {  // execution controller
        if (config_.on_cycle) config_.on_cycle();  // sample the last cycle
        return;
      }
    }
    if (config_.on_cycle) config_.on_cycle();
  }
  // Clock-cycle limit reached: also a normal path end (§IV-D).
}

}  // namespace rvsym::core
