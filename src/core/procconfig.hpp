// Processor Configuration Description (the top-left box of Fig. 1).
//
// In the paper's flow one configuration description feeds BOTH the
// SpinalHDL processor and the C++ ISS, "because the RTL core and the C++
// ISS are configured based on the same processor configuration
// description, the RTL core and the C++ [ISS] should behave in the same
// way at the functional level". This type is that single source: it
// captures the implementation-choice axes the RISC-V ISA leaves open
// (misaligned-access handling, WFI realization, CSR feature set, trap
// strictness, interrupts, timing model) and derives a CONSISTENT
// RtlConfig/IssConfig pair — any pair derived from one description is
// lockstep-clean by construction (property-tested).
//
// The authentic Table-I setup is precisely the case where the two sides
// were NOT derived from one description (MicroRV32 vs the VP defaults);
// those presets remain available on RtlConfig/IssConfig directly.
#pragma once

#include "iss/iss.hpp"
#include "rtl/core.hpp"

namespace rvsym::core {

struct ProcessorConfig {
  std::uint32_t reset_pc = 0x80000000;

  /// Support misaligned data accesses (true) or trap on them (false).
  bool misaligned_access_support = false;
  /// Implement WFI as a NOP (true) or trap as illegal (false).
  bool implement_wfi = true;
  /// Implement the full CSR set (unprivileged counters, mhpm*, mscratch,
  /// mcounteren) or only the minimal machine subset.
  bool full_csr_set = true;
  /// Raise the specification-mandated illegal-instruction traps
  /// (unimplemented CSR access, read-only CSR writes).
  bool spec_traps = true;
  /// Machine interrupts (MEI/MSI/MTI).
  bool interrupts = true;
  /// Count mcycle per retired instruction (abstract/ISS-style timing)
  /// instead of per clock tick. Must be instruction-based for the two
  /// abstraction levels to agree on counter reads.
  bool abstract_timing = true;

  /// Derives the RTL core configuration for this description.
  rtl::RtlConfig rtlConfig() const;
  /// Derives the ISS configuration for this description.
  iss::IssConfig issConfig() const;

  /// A fully specification-compliant embedded configuration.
  static ProcessorConfig specCompliant();
  /// A minimal controller: no optional CSRs, misaligned supported, WFI
  /// as NOP, lenient traps — still self-consistent across both models.
  static ProcessorConfig minimalController();
};

}  // namespace rvsym::core
