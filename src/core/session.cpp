#include "core/session.hpp"

#include <iomanip>
#include <sstream>

namespace rvsym::core {

VerificationSession::VerificationSession(expr::ExprBuilder& eb,
                                         SessionOptions options)
    : eb_(eb), options_(std::move(options)) {}

SessionReport VerificationSession::run() {
  CoSimulation cosim(eb_, options_.cosim);
  symex::Engine engine(eb_, options_.engine);
  SessionReport report;
  report.engine = engine.run(cosim.program());
  report.findings = classifyReport(report.engine);
  return report;
}

std::string renderFindingsTable(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << std::left << std::setw(20) << "Instruction & CSR" << std::setw(34)
     << "Example" << std::setw(28) << "Description" << "R\n";
  os << std::string(85, '-') << "\n";
  for (const Finding& f : findings) {
    os << std::left << std::setw(20) << f.subject << std::setw(34) << f.example
       << std::setw(28) << f.description << f.r_class << "\n";
  }
  return os.str();
}

}  // namespace rvsym::core
