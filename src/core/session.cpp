#include "core/session.hpp"

#include <iomanip>
#include <memory>
#include <sstream>

#include "core/coverage.hpp"

namespace rvsym::core {

VerificationSession::VerificationSession(expr::ExprBuilder& eb,
                                         SessionOptions options)
    : eb_(eb), options_(std::move(options)) {}

SessionReport VerificationSession::run() {
  // Session-level observability defaults: tag every path with the
  // instruction classes its test vector exercises (the analyzer's
  // attribution keys), and let heartbeats report live coverage.
  if (!options_.engine.path_tagger)
    options_.engine.path_tagger = instrClassTagger();
  if (options_.engine.heartbeat_seconds > 0 &&
      !options_.engine.heartbeat_annotator)
    options_.engine.heartbeat_annotator = coverageHeartbeat();

  SessionReport report;
  if (options_.engine.jobs > 1) {
    // Parallel exploration: one co-sim harness per worker, each built
    // against the worker's private builder.
    symex::ParallelEngine engine(options_.engine);
    const CosimConfig& cfg = options_.cosim;
    report.engine = engine.run([&cfg](symex::WorkerContext& ctx) {
      auto cosim = std::make_shared<CoSimulation>(ctx.builder, cfg);
      return [cosim](symex::ExecState& st) { cosim->runPath(st); };
    });
  } else {
    CoSimulation cosim(eb_, options_.cosim);
    symex::Engine engine(eb_, options_.engine);
    report.engine = engine.run(cosim.program());
  }
  report.findings = classifyReport(report.engine);
  return report;
}

std::string renderFindingsTable(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << std::left << std::setw(20) << "Instruction & CSR" << std::setw(34)
     << "Example" << std::setw(28) << "Description" << "R\n";
  os << std::string(85, '-') << "\n";
  for (const Finding& f : findings) {
    os << std::left << std::setw(20) << f.subject << std::setw(34) << f.example
       << std::setw(28) << f.description << f.r_class << "\n";
  }
  return os.str();
}

}  // namespace rvsym::core
