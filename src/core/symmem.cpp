#include "core/symmem.hpp"

#include <cstdio>

namespace rvsym::core {

using expr::ExprRef;
using symex::ExecState;

namespace {

std::string hex8(std::uint32_t v) {
  char buf[12];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

}  // namespace

std::string SymbolicInstrMemory::variableName(std::uint32_t addr) {
  return "instr@" + hex8(addr);
}

ExprRef SymbolicInstrMemory::fetch(ExecState& st, std::uint32_t addr) {
  auto it = cache_.find(addr);
  if (it != cache_.end()) return it->second;
  const ExprRef word = st.makeSymbolic(variableName(addr), 32);
  if (constraint_) constraint_(st, word);
  cache_.emplace(addr, word);
  return word;
}

std::string InitialImage::variableName(std::uint32_t addr) {
  return "mem@" + hex8(addr);
}

ExprRef InitialImage::byteAt(ExecState& st, std::uint32_t addr) {
  return st.makeSymbolic(variableName(addr), 8);
}

ExprRef SymbolicDataMemory::byteAt(ExecState& st, std::uint32_t addr) {
  auto it = overlay_.find(addr);
  if (it != overlay_.end()) return it->second;
  return image_.byteAt(st, addr);
}

void SymbolicDataMemory::setByte(std::uint32_t addr, ExprRef value8) {
  overlay_[addr] = std::move(value8);
}

ExprRef SymbolicDataMemory::loadByte(ExecState& st, const ExprRef& addr) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  return byteAt(st, a);
}

ExprRef SymbolicDataMemory::loadHalf(ExecState& st, const ExprRef& addr) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  return st.builder().concat(byteAt(st, a + 1), byteAt(st, a));
}

ExprRef SymbolicDataMemory::loadWord(ExecState& st, const ExprRef& addr) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  expr::ExprBuilder& eb = st.builder();
  return eb.concat(eb.concat(byteAt(st, a + 3), byteAt(st, a + 2)),
                   eb.concat(byteAt(st, a + 1), byteAt(st, a)));
}

void SymbolicDataMemory::storeByte(ExecState& st, const ExprRef& addr,
                                   const ExprRef& value8) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  setByte(a, value8);
}

void SymbolicDataMemory::storeHalf(ExecState& st, const ExprRef& addr,
                                   const ExprRef& value16) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  expr::ExprBuilder& eb = st.builder();
  setByte(a, eb.extract(value16, 0, 8));
  setByte(a + 1, eb.extract(value16, 8, 8));
}

void SymbolicDataMemory::storeWord(ExecState& st, const ExprRef& addr,
                                   const ExprRef& value32) {
  const auto a = static_cast<std::uint32_t>(st.concretize(addr));
  expr::ExprBuilder& eb = st.builder();
  for (unsigned i = 0; i < 4; ++i)
    setByte(a + i, eb.extract(value32, i * 8, 8));
}

ExprRef SymbolicDataMemory::loadStrobed(ExecState& st, std::uint32_t word_addr,
                                        std::uint8_t /*strobe*/) {
  expr::ExprBuilder& eb = st.builder();
  // The memory returns the full word; the core consumes the strobed lanes.
  return eb.concat(
      eb.concat(byteAt(st, word_addr + 3), byteAt(st, word_addr + 2)),
      eb.concat(byteAt(st, word_addr + 1), byteAt(st, word_addr)));
}

void SymbolicDataMemory::storeStrobed(ExecState& st, std::uint32_t word_addr,
                                      std::uint8_t strobe,
                                      const ExprRef& wdata) {
  expr::ExprBuilder& eb = st.builder();
  for (unsigned lane = 0; lane < 4; ++lane)
    if (strobe & (1u << lane))
      setByte(word_addr + lane, eb.extract(wdata, lane * 8, 8));
}

}  // namespace rvsym::core
