// The symbolic co-simulation testbench (paper §IV-B): instantiates the
// RTL core and the ISS over shared symbolic memories and sliced symbolic
// registers, drives the IBus/DBus protocols, invokes the voter at every
// RTL retirement and enforces the execution-controller limits.
//
// CoSimulation::runPath is the "co-simulation main" — the program handed
// to the symbolic execution engine; each engine path runs it once from
// reset.
#pragma once

#include <cstdint>
#include <vector>
#include <string>

#include "core/monitor.hpp"
#include "core/symmem.hpp"
#include "core/voter.hpp"
#include "expr/builder.hpp"
#include "iss/iss.hpp"
#include "obs/metrics.hpp"
#include "rtl/core.hpp"
#include "symex/engine.hpp"

namespace rvsym::core {

struct CosimConfig {
  rtl::RtlConfig rtl;   ///< authentic MicroRV32 by default
  iss::IssConfig iss;   ///< authentic RISC-V VP by default

  /// Sliced symbolic registers (§IV-C.3): x0 stays hardwired zero,
  /// x1..x<num_symbolic_regs> are initialized with one shared symbolic
  /// value per register in both models, the rest are regular registers.
  /// Two suffice for RV32I (no instruction reads more than two sources).
  unsigned num_symbolic_regs = 2;

  /// Execution controller (§IV-D): stop the path after this many retired
  /// instructions...
  unsigned instr_limit = 1;
  /// ...or after this many clock cycles (0 = derived from instr_limit).
  unsigned cycle_limit = 0;

  /// klee_assume hook applied to each generated instruction word.
  InstrConstraint instr_constraint;

  /// Optional hook invoked once per path after the sliced symbolic
  /// registers are initialized — used e.g. by test-vector replay to pin
  /// the register inputs to recorded values.
  std::function<void(symex::ExecState&)> post_init_hook;

  /// Enables the riscv-formal-style RVFI self-consistency monitor on
  /// both retirement streams (solver-backed; off by default for speed).
  bool enable_rvfi_monitor = false;

  /// Testbench interrupt injection: assert this mip bit (3=MSI, 7=MTI,
  /// 11=MEI; -1 = none) on both models after `irq_at_cycle` clock cycles.
  int irq_line = -1;
  unsigned irq_at_cycle = 0;

  /// Bus wait states: the testbench answers IBus/DBus requests only
  /// after this many extra cycles (protocol-robustness testing; the
  /// core must stall without functional change).
  unsigned bus_wait_states = 0;

  /// Fault injection for Table II (applied to the RTL core per path).
  rtl::ExecFaults faults;
  /// Decode-table mask bits to clear, as {opcode, bit} pairs (E0-E2).
  struct DecodeDontCare {
    rv32::Opcode op;
    unsigned bit;
  };
  std::vector<DecodeDontCare> decode_dont_cares;

  // --- Observability --------------------------------------------------------
  /// Per-instruction step-time histograms ("cosim.rtl_instr_us": RTL
  /// clock cycles between retirements; "cosim.iss_step_us": one ISS
  /// step). nullptr keeps the hot loop free of clock reads.
  obs::MetricsRegistry* metrics = nullptr;
  /// Recording hooks for concrete replay (mismatch-repro bundles attach
  /// a VCD writer and RVFI recorders here). All optional; each costs one
  /// branch per use site when unset. They run on the worker executing
  /// the path, so anything they touch must be per-harness state.
  std::function<void(const rtl::MicroRv32Core&)> on_core_built;
  /// After testbench bus servicing, once per clock cycle (VCD sampling).
  std::function<void()> on_cycle;
  /// At every voter invocation, with both retirement records — called
  /// before the comparison, so the mismatching retirement is captured.
  std::function<void(symex::ExecState&, const iss::RetireInfo& rtl,
                     const iss::RetireInfo& iss)>
      on_retire;
};

class CoSimulation {
 public:
  CoSimulation(expr::ExprBuilder& eb, CosimConfig config);

  /// One full co-simulation from reset — the engine's path program.
  void runPath(symex::ExecState& st);

  /// Engine-ready callable.
  std::function<void(symex::ExecState&)> program() {
    return [this](symex::ExecState& st) { runPath(st); };
  }

  const CosimConfig& config() const { return config_; }

  // --- Standard scenario constraints (klee_assume recipes) -----------------
  /// Blocks SYSTEM-opcode instructions (CSR ops, ECALL/EBREAK/WFI/MRET):
  /// the Table II configuration ("only RV32I").
  static InstrConstraint blockSystemInstructions();
  /// Restricts generation to one major opcode (scenario focus).
  static InstrConstraint onlyMajorOpcode(std::uint32_t opcode7);
  /// Restricts generation to SYSTEM instructions (CSR exploration).
  static InstrConstraint onlySystemInstructions();
  /// Restricts generation to CSR instructions on one specific CSR
  /// address (targeted stateful-CSR scenarios, e.g. write mscratch then
  /// read it back).
  static InstrConstraint onlyCsrAddress(std::uint16_t csr_addr);

 private:
  expr::ExprBuilder& eb_;
  CosimConfig config_;
  // Histogram handles resolved once per harness (registry look-ups are
  // mutex-guarded; the hot loop must not pay for them per path).
  obs::Histogram* rtl_instr_us_ = nullptr;
  obs::Histogram* iss_step_us_ = nullptr;
};

/// Formats the voter-mismatch message so the classifier can recover the
/// faulting PC ("voter mismatch [field] pc=XXXXXXXX: detail").
std::string formatMismatchMessage(const Mismatch& m, std::uint32_t pc);
/// Parses a message produced by formatMismatchMessage.
bool parseMismatchMessage(const std::string& message, std::string& field,
                          std::uint32_t& pc);

}  // namespace rvsym::core
