// Mismatch classification into the paper's Table I taxonomy.
//
// Takes an error path produced by the engine (voter-mismatch message +
// solved test vector), recovers the witness instruction from the
// symbolic instruction memory's variable, and buckets the finding into
// the Table I categories with the E / E* / M result class.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "symex/engine.hpp"

namespace rvsym::core {

struct Finding {
  std::string subject;      ///< Table I column 1: instruction or CSR name
  std::string example;      ///< column 2: disassembled witness instruction
  std::string description;  ///< column 3
  std::string r_class;      ///< column 4: "E", "E*" or "M"
  std::uint32_t witness_instr = 0;
  std::string voter_field;
  /// Dedup key: one Table-I row per (subject, description).
  std::string key() const { return subject + "|" + description; }
};

/// Classifies one error path. Returns nullopt when the record is not a
/// parseable voter mismatch.
std::optional<Finding> classifyErrorPath(const symex::PathRecord& record);

/// Classifies and deduplicates all error paths of a report, preserving
/// first-seen order.
std::vector<Finding> classifyReport(const symex::EngineReport& report);

}  // namespace rvsym::core
