// Test-set coverage measurement.
//
// The paper's flow "generate[s] test vectors in order to find bugs and
// create a high coverage test set". This collector quantifies that
// second output: given the emitted test vectors, it measures which parts
// of the instruction space the set exercises — opcode coverage over all
// 48 RV32I+Zicsr+priv encodings, CSR-address coverage for the system
// instructions, illegal-encoding coverage, and branch-direction/
// alignment diversity recoverable from the vectors.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "rv32/instr.hpp"
#include "symex/engine.hpp"

namespace rvsym::core {

class CoverageCollector {
 public:
  /// Accounts every instruction word found in the vector (all variables
  /// named "instr@...").
  void addTestVector(const symex::TestVector& vector);

  /// Accounts every test vector of a report (completed + error paths).
  void addReport(const symex::EngineReport& report);

  // --- Metrics -------------------------------------------------------------
  /// Distinct decoded opcodes exercised (Illegal counts separately).
  std::size_t opcodesCovered() const { return opcodes_.size(); }
  /// Fraction of the 48 legal opcodes exercised, in percent.
  double opcodeCoveragePercent() const;
  bool covers(rv32::Opcode op) const { return opcodes_.count(op) != 0; }
  /// Illegal/reserved encodings exercised?
  bool coversIllegal() const { return illegal_words_ > 0; }
  /// Distinct CSR addresses touched by CSR instructions.
  std::size_t csrAddressesCovered() const { return csrs_.size(); }
  /// Distinct instruction words in the set.
  std::size_t distinctWords() const { return words_.size(); }
  std::uint64_t totalWords() const { return total_words_; }

  /// Opcodes NOT yet covered (for coverage-hole reporting).
  std::set<rv32::Opcode> uncoveredOpcodes() const;

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  std::set<rv32::Opcode> opcodes_;
  std::set<std::uint16_t> csrs_;
  std::set<std::uint32_t> words_;
  std::map<rv32::Opcode, std::uint64_t> per_opcode_count_;
  std::uint64_t illegal_words_ = 0;
  std::uint64_t total_words_ = 0;
};

}  // namespace rvsym::core
