// Test-set coverage measurement.
//
// The paper's flow "generate[s] test vectors in order to find bugs and
// create a high coverage test set". This collector quantifies that
// second output at two granularities: coarse opcode coverage over all
// legal RV32I+Zicsr+priv encodings (rv32::kLegalOpcodeCount of them),
// and a fine-grained decoder-space map of (opcode7, funct3, funct7)
// cells — legal cells from the decode table plus the illegal neighbor
// cells the set probed. On top of the instruction-word view it tracks
// the run-level coverage signals the analysis layer feeds back from
// path tags: CSR-address bins, exercised trap causes and voter
// comparison channels.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rv32/instr.hpp"
#include "symex/engine.hpp"

namespace rvsym::core {

/// One cell of the decoder space: the major opcode plus the funct3 /
/// funct7 / rs2-field selectors. A dimension the decode pattern leaves
/// unconstrained (e.g. funct7 of ADDI, where those bits belong to the
/// immediate) is kWild, so every concrete word of an opcode
/// canonicalizes to the same legal cell. The rs2 field matters only for
/// the full-match SYSTEM encodings, where it is what separates ECALL /
/// EBREAK / MRET / WFI. Words that decode to Illegal keep their raw
/// selector values — they chart which corners of the illegal space were
/// probed.
struct DecoderCell {
  static constexpr std::uint8_t kWild = 0xFF;

  std::uint8_t opcode7 = 0;
  std::uint8_t funct3 = kWild;
  std::uint8_t funct7 = kWild;
  std::uint8_t rs2field = kWild;

  std::uint32_t key() const {
    return static_cast<std::uint32_t>(opcode7) |
           (static_cast<std::uint32_t>(funct3) << 8) |
           (static_cast<std::uint32_t>(funct7) << 16) |
           (static_cast<std::uint32_t>(rs2field) << 24);
  }
  bool operator<(const DecoderCell& o) const { return key() < o.key(); }
  bool operator==(const DecoderCell& o) const { return key() == o.key(); }

  /// "op=0x33 f3=5 f7=0x20" with wildcard dims rendered as "*" (the rs2
  /// field is shown only when constrained).
  std::string describe() const;
};

/// The canonical legal cell of each decode-table row, in table order.
std::vector<DecoderCell> legalDecoderCells();

/// Canonical cell of a concrete instruction word (legal words collapse
/// unconstrained dims to kWild; illegal words keep raw selectors).
DecoderCell decoderCellOf(std::uint32_t word);

/// Architectural CSR address bin ("machine-info", "trap-setup",
/// "trap-handling", "counter-setup", "machine-counters",
/// "user-counters", "other").
const char* csrBinName(std::uint16_t addr);
/// All bin names, in a stable reporting order.
const std::vector<std::string>& csrBinNames();

/// The voter's comparison channels, in reporting order: "trap", "pc",
/// "next_pc", "rd", "mem". The voter tags each path with the channels
/// it exercised ("voter:<channel>").
const std::vector<std::string>& voterChannelNames();

class CoverageCollector {
 public:
  /// Accounts every instruction word found in the vector (all variables
  /// named "instr@...").
  void addTestVector(const symex::TestVector& vector);

  /// Accounts a path record: its test vector plus the run-level tags
  /// ("trap:<cause>" -> trap-cause coverage, "voter:<channel>" ->
  /// voter-channel coverage).
  void addPathRecord(const symex::PathRecord& record);

  /// Accounts every path of a report (completed + error paths).
  void addReport(const symex::EngineReport& report);

  void noteTrapCause(std::uint32_t cause) { trap_causes_.insert(cause); }
  void noteVoterChannel(const std::string& channel) {
    voter_channels_.insert(channel);
  }

  // --- Metrics -------------------------------------------------------------
  /// Distinct decoded opcodes exercised (Illegal counts separately).
  std::size_t opcodesCovered() const { return opcodes_.size(); }
  /// Fraction of the rv32::kLegalOpcodeCount legal opcodes exercised, in
  /// percent.
  double opcodeCoveragePercent() const;
  bool covers(rv32::Opcode op) const { return opcodes_.count(op) != 0; }
  /// Illegal/reserved encodings exercised?
  bool coversIllegal() const { return illegal_words_ > 0; }
  /// Distinct CSR addresses touched by CSR instructions.
  std::size_t csrAddressesCovered() const { return csrs_.size(); }
  /// Distinct instruction words in the set.
  std::size_t distinctWords() const { return words_.size(); }
  std::uint64_t totalWords() const { return total_words_; }

  /// Opcodes NOT yet covered (for coverage-hole reporting).
  std::set<rv32::Opcode> uncoveredOpcodes() const;

  // --- Decoder-space map ---------------------------------------------------
  /// Legal decoder cells exercised / missing.
  std::set<DecoderCell> coveredCells() const { return legal_cells_; }
  std::vector<DecoderCell> uncoveredCells() const;
  double cellCoveragePercent() const;
  /// Illegal-space cells the set probed (raw selectors of words that
  /// decode to Illegal).
  const std::set<DecoderCell>& illegalCellsProbed() const {
    return illegal_cells_;
  }

  // --- Run-level coverage (fed from path tags) -----------------------------
  const std::set<std::uint16_t>& csrAddresses() const { return csrs_; }
  /// CSR bins with at least one touched address / still empty.
  std::set<std::string> coveredCsrBins() const;
  std::vector<std::string> uncoveredCsrBins() const;
  const std::set<std::uint32_t>& trapCauses() const { return trap_causes_; }
  std::vector<std::uint32_t> uncoveredTrapCauses() const;
  const std::set<std::string>& voterChannels() const {
    return voter_channels_;
  }
  std::vector<std::string> uncoveredVoterChannels() const;

  /// Per-opcode exercise counts (heatmap intensity).
  const std::map<rv32::Opcode, std::uint64_t>& perOpcodeCounts() const {
    return per_opcode_count_;
  }

  /// Full coverage map as one JSON object (shared obs::JsonWriter):
  /// counters, per-cell status, holes, CSR bins, trap causes and voter
  /// channels — the document the HTML report embeds and diff consumes.
  std::string toJson() const;

  /// Multi-line human-readable summary.
  std::string summary() const;
  /// Human-readable hole list (uncovered cells / bins / channels /
  /// causes), one per line.
  std::string holeReport() const;

 private:
  std::set<rv32::Opcode> opcodes_;
  std::set<std::uint16_t> csrs_;
  std::set<std::uint32_t> words_;
  std::map<rv32::Opcode, std::uint64_t> per_opcode_count_;
  std::set<DecoderCell> legal_cells_;
  std::map<std::uint32_t, std::uint64_t> legal_cell_count_;  ///< key -> hits
  std::set<DecoderCell> illegal_cells_;
  std::set<std::uint32_t> trap_causes_;
  std::set<std::string> voter_channels_;
  std::uint64_t illegal_words_ = 0;
  std::uint64_t total_words_ = 0;
};

/// EngineOptions::path_tagger that decodes the test vector's
/// instruction words into deterministic workload tags: "op:<name>" and
/// "class:<class>" per word ("class:illegal" for reserved encodings).
/// The trace analyzer keys its solver-time attribution on these.
std::function<std::vector<std::string>(const symex::PathRecord&)>
instrClassTagger();

/// EngineOptions::heartbeat_annotator that reports live test-set
/// coverage ("cov=87.5% (42/48 ops)") over the committed paths so far.
/// Stateful and incremental: each call consumes only the records
/// appended since the last one.
std::function<std::string(const symex::EngineReport&)> coverageHeartbeat();

}  // namespace rvsym::core
