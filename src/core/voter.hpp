// The voter (paper §IV-D): compares the RVFI-style retirement record of
// the RTL core against the ISS step result. Each field comparison is a
// symbolic branch — if any satisfying assignment makes the two models
// disagree, the path forks and the disagreeing side reports a mismatch
// (KLEE's assertion-violation behaviour). When the models agree on every
// reachable assignment, no fork happens and verification continues.
#pragma once

#include <optional>
#include <string>

#include "iss/retire.hpp"
#include "symex/state.hpp"

namespace rvsym::core {

struct Mismatch {
  std::string field;   ///< which channel diverged: trap / next_pc / rd_value / ...
  std::string detail;  ///< human-readable explanation
};

class Voter {
 public:
  /// Compares the two retirement records under the current path
  /// constraints. Returns a mismatch description on the path where the
  /// models diverge; returns nullopt on the (possibly constrained)
  /// agreeing path.
  std::optional<Mismatch> compare(symex::ExecState& st,
                                  const iss::RetireInfo& rtl,
                                  const iss::RetireInfo& iss);

  /// Renders a mismatch as the voter's exception message.
  static std::string describe(const Mismatch& m);
};

}  // namespace rvsym::core
