// VerificationSession — the top-level driver: wires a CoSimulation into
// the symbolic execution engine, runs the exploration and distills the
// error paths into classified findings. One session corresponds to one
// "run KLEE on the co-simulation" invocation of the paper.
#pragma once

#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/cosim.hpp"
#include "symex/engine.hpp"
#include "symex/parallel.hpp"

namespace rvsym::core {

struct SessionOptions {
  CosimConfig cosim;
  /// Engine configuration. `engine.jobs > 1` explores on that many
  /// worker threads (one co-sim harness per worker); the report is
  /// deterministic and count-identical to a single-threaded run. Any
  /// CosimConfig hooks (instr_constraint, post_init_hook) are then
  /// invoked concurrently from multiple workers and must be
  /// re-entrant — the built-in scenario constraints all are.
  symex::ParallelEngineOptions engine;

  SessionOptions() {
    // Verification sweeps want every mismatch, not just the first.
    engine.stop_on_error = false;
  }
};

struct SessionReport {
  std::vector<Finding> findings;  ///< deduplicated, first-seen order
  symex::EngineReport engine;
};

class VerificationSession {
 public:
  VerificationSession(expr::ExprBuilder& eb, SessionOptions options);

  SessionReport run();

  const SessionOptions& options() const { return options_; }

 private:
  expr::ExprBuilder& eb_;
  SessionOptions options_;
};

/// Renders findings as a Table-I-style text table.
std::string renderFindingsTable(const std::vector<Finding>& findings);

}  // namespace rvsym::core
