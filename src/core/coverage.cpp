#include "core/coverage.hpp"

#include <sstream>

namespace rvsym::core {

using rv32::Opcode;

void CoverageCollector::addTestVector(const symex::TestVector& vector) {
  for (const symex::TestValue& v : vector.values) {
    if (v.name.rfind("instr@", 0) != 0) continue;
    const auto word = static_cast<std::uint32_t>(v.value);
    ++total_words_;
    words_.insert(word);
    const rv32::Decoded d = rv32::decode(word);
    if (d.op == Opcode::Illegal) {
      ++illegal_words_;
      continue;
    }
    opcodes_.insert(d.op);
    ++per_opcode_count_[d.op];
    if (rv32::isCsrOp(d.op)) csrs_.insert(d.csr);
  }
}

void CoverageCollector::addReport(const symex::EngineReport& report) {
  for (const symex::PathRecord& p : report.paths)
    if (p.has_test) addTestVector(p.test);
}

double CoverageCollector::opcodeCoveragePercent() const {
  return 100.0 * static_cast<double>(opcodes_.size()) /
         static_cast<double>(rv32::decodeTable().size());
}

std::set<Opcode> CoverageCollector::uncoveredOpcodes() const {
  std::set<Opcode> missing;
  for (const rv32::DecodePattern& p : rv32::decodeTable())
    if (opcodes_.count(p.op) == 0) missing.insert(p.op);
  return missing;
}

std::string CoverageCollector::summary() const {
  std::ostringstream os;
  os << "test-set coverage: " << opcodes_.size() << "/"
     << rv32::decodeTable().size() << " opcodes ("
     << static_cast<int>(opcodeCoveragePercent() + 0.5) << "%), "
     << csrs_.size() << " CSR addresses, " << words_.size()
     << " distinct instruction words, illegal encodings "
     << (illegal_words_ > 0 ? "covered" : "NOT covered") << "\n";
  const std::set<Opcode> missing = uncoveredOpcodes();
  if (!missing.empty()) {
    os << "uncovered opcodes:";
    for (Opcode op : missing) os << " " << rv32::opcodeName(op);
    os << "\n";
  }
  return os.str();
}

}  // namespace rvsym::core
