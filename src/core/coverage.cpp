#include "core/coverage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "obs/json.hpp"

namespace rvsym::core {

using rv32::Opcode;

namespace {

constexpr std::uint32_t kF3FieldMask = 0x00007000;
constexpr std::uint32_t kF7FieldMask = 0xFE000000;
constexpr std::uint32_t kRs2FieldMask = 0x01F00000;

/// Canonical cell of one decode-table row: a selector dimension is
/// meaningful only where the pattern's mask constrains all of its bits
/// (e.g. ADDI's funct7 bits belong to the immediate, so funct7 = kWild).
/// The rs2-field dimension is constrained only by the full-match SYSTEM
/// rows — without it ECALL and EBREAK (same opcode/funct3/funct7,
/// different imm) would collapse into one cell.
DecoderCell cellOfPattern(const rv32::DecodePattern& p) {
  DecoderCell c;
  c.opcode7 = static_cast<std::uint8_t>(p.match & 0x7F);
  if ((p.mask & kF3FieldMask) == kF3FieldMask)
    c.funct3 = static_cast<std::uint8_t>((p.match >> 12) & 0x7);
  if ((p.mask & kF7FieldMask) == kF7FieldMask)
    c.funct7 = static_cast<std::uint8_t>((p.match >> 25) & 0x7F);
  if ((p.mask & kRs2FieldMask) == kRs2FieldMask)
    c.rs2field = static_cast<std::uint8_t>((p.match >> 20) & 0x1F);
  return c;
}

std::string cellJson(const DecoderCell& c) {
  obs::JsonWriter w;
  w.beginObject();
  if (c.opcode7 == DecoderCell::kWild) w.key("op").nullValue();
  else w.field("op", static_cast<std::uint64_t>(c.opcode7));
  if (c.funct3 == DecoderCell::kWild) w.key("f3").nullValue();
  else w.field("f3", static_cast<std::uint64_t>(c.funct3));
  if (c.funct7 == DecoderCell::kWild) w.key("f7").nullValue();
  else w.field("f7", static_cast<std::uint64_t>(c.funct7));
  if (c.rs2field != DecoderCell::kWild)
    w.field("rs2", static_cast<std::uint64_t>(c.rs2field));
  w.endObject();
  return w.str();
}

}  // namespace

std::string DecoderCell::describe() const {
  char buf[64];
  char f3s[8] = "*";
  char f7s[8] = "*";
  if (funct3 != kWild) std::snprintf(f3s, sizeof f3s, "%u", funct3);
  if (funct7 != kWild) std::snprintf(f7s, sizeof f7s, "0x%02x", funct7);
  std::snprintf(buf, sizeof buf, "op=0x%02x f3=%s f7=%s", opcode7, f3s, f7s);
  std::string out = buf;
  if (rs2field != kWild) {
    std::snprintf(buf, sizeof buf, " rs2=%u", rs2field);
    out += buf;
  }
  return out;
}

std::vector<DecoderCell> legalDecoderCells() {
  std::vector<DecoderCell> cells;
  cells.reserve(rv32::decodeTable().size());
  for (const rv32::DecodePattern& p : rv32::decodeTable())
    cells.push_back(cellOfPattern(p));
  return cells;
}

DecoderCell decoderCellOf(std::uint32_t word) {
  for (const rv32::DecodePattern& p : rv32::decodeTable())
    if ((word & p.mask) == p.match) return cellOfPattern(p);
  // Illegal word: keep the raw selector fields so the illegal-space map
  // shows which decoder corner was probed.
  DecoderCell c;
  c.opcode7 = static_cast<std::uint8_t>(word & 0x7F);
  c.funct3 = static_cast<std::uint8_t>((word >> 12) & 0x7);
  c.funct7 = static_cast<std::uint8_t>((word >> 25) & 0x7F);
  return c;
}

const char* csrBinName(std::uint16_t addr) {
  if (addr >= 0xF11 && addr <= 0xF14) return "machine-info";
  if (addr >= 0x300 && addr <= 0x306) return "trap-setup";
  if (addr >= 0x320 && addr <= 0x33F) return "counter-setup";
  if (addr >= 0x340 && addr <= 0x344) return "trap-handling";
  if (addr >= 0xB00 && addr <= 0xB9F) return "machine-counters";
  if (addr >= 0xC00 && addr <= 0xC9F) return "user-counters";
  return "other";
}

const std::vector<std::string>& csrBinNames() {
  static const std::vector<std::string> names{
      "machine-info",     "trap-setup",       "counter-setup",
      "trap-handling",    "machine-counters", "user-counters"};
  return names;
}

const std::vector<std::string>& voterChannelNames() {
  static const std::vector<std::string> names{"trap", "pc", "next_pc", "rd",
                                              "mem"};
  return names;
}

void CoverageCollector::addTestVector(const symex::TestVector& vector) {
  for (const symex::TestValue& v : vector.values) {
    if (v.name.rfind("instr@", 0) != 0) continue;
    const auto word = static_cast<std::uint32_t>(v.value);
    ++total_words_;
    words_.insert(word);
    const rv32::Decoded d = rv32::decode(word);
    if (d.op == Opcode::Illegal) {
      ++illegal_words_;
      illegal_cells_.insert(decoderCellOf(word));
      continue;
    }
    opcodes_.insert(d.op);
    ++per_opcode_count_[d.op];
    const DecoderCell cell = decoderCellOf(word);
    legal_cells_.insert(cell);
    ++legal_cell_count_[cell.key()];
    if (rv32::isCsrOp(d.op)) csrs_.insert(d.csr);
  }
}

void CoverageCollector::addPathRecord(const symex::PathRecord& record) {
  if (record.has_test) addTestVector(record.test);
  for (const std::string& tag : record.tags) {
    if (tag.rfind("trap:", 0) == 0) {
      noteTrapCause(
          static_cast<std::uint32_t>(std::strtoul(tag.c_str() + 5, nullptr, 10)));
    } else if (tag.rfind("voter:", 0) == 0) {
      noteVoterChannel(tag.substr(6));
    }
  }
}

void CoverageCollector::addReport(const symex::EngineReport& report) {
  for (const symex::PathRecord& p : report.paths) addPathRecord(p);
}

double CoverageCollector::opcodeCoveragePercent() const {
  return 100.0 * static_cast<double>(opcodes_.size()) /
         static_cast<double>(rv32::kLegalOpcodeCount);
}

std::set<Opcode> CoverageCollector::uncoveredOpcodes() const {
  std::set<Opcode> missing;
  for (const rv32::DecodePattern& p : rv32::decodeTable())
    if (opcodes_.count(p.op) == 0) missing.insert(p.op);
  return missing;
}

std::vector<DecoderCell> CoverageCollector::uncoveredCells() const {
  std::vector<DecoderCell> missing;
  for (const DecoderCell& c : legalDecoderCells())
    if (legal_cells_.count(c) == 0) missing.push_back(c);
  return missing;
}

double CoverageCollector::cellCoveragePercent() const {
  return 100.0 * static_cast<double>(legal_cells_.size()) /
         static_cast<double>(rv32::decodeTable().size());
}

std::set<std::string> CoverageCollector::coveredCsrBins() const {
  std::set<std::string> bins;
  for (std::uint16_t addr : csrs_) bins.insert(csrBinName(addr));
  return bins;
}

std::vector<std::string> CoverageCollector::uncoveredCsrBins() const {
  const std::set<std::string> covered = coveredCsrBins();
  std::vector<std::string> missing;
  for (const std::string& name : csrBinNames())
    if (covered.count(name) == 0) missing.push_back(name);
  return missing;
}

std::vector<std::uint32_t> CoverageCollector::uncoveredTrapCauses() const {
  static const rv32::Cause kAll[] = {
      rv32::Cause::MisalignedFetch, rv32::Cause::FetchAccess,
      rv32::Cause::IllegalInstr,    rv32::Cause::Breakpoint,
      rv32::Cause::MisalignedLoad,  rv32::Cause::LoadAccess,
      rv32::Cause::MisalignedStore, rv32::Cause::StoreAccess,
      rv32::Cause::EcallFromU,      rv32::Cause::EcallFromM};
  std::vector<std::uint32_t> missing;
  for (rv32::Cause c : kAll) {
    const auto v = static_cast<std::uint32_t>(c);
    if (trap_causes_.count(v) == 0) missing.push_back(v);
  }
  return missing;
}

std::vector<std::string> CoverageCollector::uncoveredVoterChannels() const {
  std::vector<std::string> missing;
  for (const std::string& name : voterChannelNames())
    if (voter_channels_.count(name) == 0) missing.push_back(name);
  return missing;
}

std::string CoverageCollector::toJson() const {
  obs::JsonWriter w;
  w.beginObject();

  w.key("opcodes").beginObject();
  w.field("covered", static_cast<std::uint64_t>(opcodes_.size()));
  w.field("total", static_cast<std::uint64_t>(rv32::kLegalOpcodeCount));
  w.field("percent", opcodeCoveragePercent());
  w.key("counts").beginObject();
  for (const auto& [op, count] : per_opcode_count_)
    w.field(rv32::opcodeName(op), count);
  w.endObject();
  w.key("uncovered").beginArray();
  for (Opcode op : uncoveredOpcodes()) w.value(rv32::opcodeName(op));
  w.endArray();
  w.endObject();

  // The decoder-space map: one entry per legal cell in decode-table
  // order, each with its opcode, class, cell coordinates and hit count.
  w.key("cells").beginObject();
  w.field("total", static_cast<std::uint64_t>(rv32::decodeTable().size()));
  w.field("covered", static_cast<std::uint64_t>(legal_cells_.size()));
  w.field("percent", cellCoveragePercent());
  w.key("map").beginArray();
  {
    const std::vector<DecoderCell> cells = legalDecoderCells();
    const auto table = rv32::decodeTable();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      w.beginObject();
      w.field("opcode", rv32::opcodeName(table[i].op));
      w.field("class", rv32::opcodeClass(table[i].op));
      w.key("cell").rawValue(cellJson(cells[i]));
      const auto it = legal_cell_count_.find(cells[i].key());
      w.field("hits", it == legal_cell_count_.end() ? std::uint64_t{0}
                                                    : it->second);
      w.endObject();
    }
  }
  w.endArray();
  w.key("illegal_probed").beginArray();
  for (const DecoderCell& c : illegal_cells_) w.rawValue(cellJson(c));
  w.endArray();
  w.endObject();

  w.key("csr").beginObject();
  w.key("addresses").beginArray();
  for (std::uint16_t addr : csrs_) w.value(static_cast<std::uint64_t>(addr));
  w.endArray();
  w.key("bins").beginObject();
  w.key("covered").beginArray();
  for (const std::string& b : coveredCsrBins()) w.value(b);
  w.endArray();
  w.key("uncovered").beginArray();
  for (const std::string& b : uncoveredCsrBins()) w.value(b);
  w.endArray();
  w.endObject();
  w.endObject();

  w.key("trap_causes").beginObject();
  w.key("covered").beginArray();
  for (std::uint32_t c : trap_causes_) w.value(static_cast<std::uint64_t>(c));
  w.endArray();
  w.key("uncovered").beginArray();
  for (std::uint32_t c : uncoveredTrapCauses())
    w.value(static_cast<std::uint64_t>(c));
  w.endArray();
  w.endObject();

  w.key("voter_channels").beginObject();
  w.key("covered").beginArray();
  for (const std::string& ch : voter_channels_) w.value(ch);
  w.endArray();
  w.key("uncovered").beginArray();
  for (const std::string& ch : uncoveredVoterChannels()) w.value(ch);
  w.endArray();
  w.endObject();

  w.key("words").beginObject();
  w.field("distinct", static_cast<std::uint64_t>(words_.size()));
  w.field("total", total_words_);
  w.field("illegal", illegal_words_);
  w.endObject();

  w.endObject();
  return w.str();
}

std::string CoverageCollector::summary() const {
  std::ostringstream os;
  os << "test-set coverage: " << opcodes_.size() << "/"
     << rv32::kLegalOpcodeCount << " opcodes ("
     << static_cast<int>(opcodeCoveragePercent() + 0.5) << "%), "
     << legal_cells_.size() << "/" << rv32::decodeTable().size()
     << " decoder cells, " << csrs_.size() << " CSR addresses, "
     << words_.size() << " distinct instruction words, illegal encodings "
     << (illegal_words_ > 0 ? "covered" : "NOT covered") << "\n";
  const std::set<Opcode> missing = uncoveredOpcodes();
  if (!missing.empty()) {
    os << "uncovered opcodes:";
    for (Opcode op : missing) os << " " << rv32::opcodeName(op);
    os << "\n";
  }
  if (!trap_causes_.empty() || !voter_channels_.empty()) {
    os << "run coverage: " << trap_causes_.size() << " trap causes, "
       << voter_channels_.size() << "/" << voterChannelNames().size()
       << " voter channels\n";
  }
  return os.str();
}

std::string CoverageCollector::holeReport() const {
  std::ostringstream os;
  for (const DecoderCell& c : uncoveredCells()) {
    // Recover the opcode owning this cell for a readable hole line.
    const auto cells = legalDecoderCells();
    const auto table = rv32::decodeTable();
    const char* name = "?";
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i] == c) {
        name = rv32::opcodeName(table[i].op);
        break;
      }
    os << "hole: decoder cell " << c.describe() << " (" << name << ")\n";
  }
  for (const std::string& b : uncoveredCsrBins())
    os << "hole: csr bin " << b << "\n";
  for (std::uint32_t c : uncoveredTrapCauses())
    os << "hole: trap cause " << c << " ("
       << rv32::causeName(static_cast<rv32::Cause>(c)) << ")\n";
  for (const std::string& ch : uncoveredVoterChannels())
    os << "hole: voter channel " << ch << "\n";
  return os.str();
}

std::function<std::vector<std::string>(const symex::PathRecord&)>
instrClassTagger() {
  return [](const symex::PathRecord& record) {
    std::vector<std::string> tags;
    if (!record.has_test) return tags;
    for (const symex::TestValue& v : record.test.values) {
      if (v.name.rfind("instr@", 0) != 0) continue;
      const rv32::Decoded d =
          rv32::decode(static_cast<std::uint32_t>(v.value));
      tags.push_back(std::string("class:") + rv32::opcodeClass(d.op));
      if (d.op != Opcode::Illegal)
        tags.push_back(std::string("op:") + rv32::opcodeName(d.op));
    }
    return tags;
  };
}

std::function<std::string(const symex::EngineReport&)> coverageHeartbeat() {
  struct State {
    CoverageCollector cov;
    std::size_t consumed = 0;
  };
  auto state = std::make_shared<State>();
  return [state](const symex::EngineReport& report) {
    // Incremental: records only ever get appended, so consume the tail.
    for (; state->consumed < report.paths.size(); ++state->consumed)
      state->cov.addPathRecord(report.paths[state->consumed]);
    char buf[64];
    std::snprintf(buf, sizeof buf, "cov=%.1f%% (%zu/%zu ops)",
                  state->cov.opcodeCoveragePercent(),
                  state->cov.opcodesCovered(),
                  static_cast<std::size_t>(rv32::kLegalOpcodeCount));
    return std::string(buf);
  };
}

}  // namespace rvsym::core
