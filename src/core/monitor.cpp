#include "core/monitor.hpp"

namespace rvsym::core {

using expr::ExprRef;

std::optional<std::string> RvfiMonitor::check(symex::ExecState& st,
                                              const iss::RetireInfo& r) {
  ++checked_;
  expr::ExprBuilder& eb = st.builder();

  if (!r.pc || !r.next_pc) return "rvfi: missing pc/next_pc";

  // PC chaining.
  if (have_prev_ && !st.mustBeTrue(eb.eq(r.pc, prev_next_pc_)))
    return "rvfi: pc does not chain from previous next_pc";
  prev_next_pc_ = r.next_pc;
  have_prev_ = true;

  // Trap discipline.
  if (r.trap) {
    if (r.rd_index) return "rvfi: trapping retirement writes a register";
    if (r.mem_valid) return "rvfi: trapping retirement accesses memory";
    if (r.cause > 15) return "rvfi: implausible trap cause";
  }

  // x0 discipline.
  if (r.rd_index) {
    if (!r.rd_value) return "rvfi: rd_index without rd_value";
    const ExprRef zero = eb.constant(0, 32);
    const ExprRef x0_ok =
        eb.boolOr(eb.ne(r.rd_index, eb.constant(0, 5)),
                  eb.eq(r.rd_value, zero));
    if (!st.mustBeTrue(x0_ok)) return "rvfi: nonzero value reported for x0";
  }

  // Memory channel sanity.
  if (r.mem_valid) {
    if (r.mem_size != 1 && r.mem_size != 2 && r.mem_size != 4)
      return "rvfi: invalid memory access size";
    if (!r.mem_addr || !r.mem_data) return "rvfi: incomplete memory channel";
  }

  // Control-flow alignment (IALIGN=32; trap vectors are masked).
  const ExprRef aligned =
      eb.eq(eb.andOp(r.next_pc, eb.constant(3, 32)), eb.constant(0, 32));
  if (!st.mustBeTrue(aligned)) return "rvfi: misaligned next_pc";

  return std::nullopt;
}

}  // namespace rvsym::core
