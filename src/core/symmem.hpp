// Symbolic memories (paper §IV-C).
//
// SymbolicInstrMemory: read-only, shared between the RTL core and the
// ISS. Each address gets one fresh symbolic 32-bit word on first fetch
// (klee_make_symbolic) and is cached so both processors always see the
// identical instruction — the paper's guard against false mismatches.
// A scenario constraint hook (klee_assume) can restrict generation, e.g.
// to block CSR instructions for the Table II experiments.
//
// SymbolicDataMemory: one per processor, but both are initialized from a
// shared InitialImage, so every byte starts as the *same* symbolic value
// in both memories (again preventing false mismatches); writes go to the
// private overlay. The ISS binds via DataMemoryIf; the RTL core reaches
// the same object through the strobe-based interface the testbench
// drives from the DBus.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "expr/builder.hpp"
#include "iss/mem_if.hpp"
#include "symex/state.hpp"

namespace rvsym::core {

/// Scenario hook applied to each freshly generated instruction word.
using InstrConstraint =
    std::function<void(symex::ExecState&, const expr::ExprRef&)>;

class SymbolicInstrMemory final : public iss::InstrSourceIf {
 public:
  explicit SymbolicInstrMemory(InstrConstraint constraint = nullptr)
      : constraint_(std::move(constraint)) {}

  expr::ExprRef fetch(symex::ExecState& st, std::uint32_t addr) override;

  /// Name of the symbolic variable backing address `addr` (for test-vector
  /// lookup).
  static std::string variableName(std::uint32_t addr);

  std::size_t generatedWords() const { return cache_.size(); }

 private:
  InstrConstraint constraint_;
  std::unordered_map<std::uint32_t, expr::ExprRef> cache_;
};

/// Shared initial memory content: byte `addr` is the same symbolic
/// variable for every memory constructed over the same image. Subclasses
/// may return concrete content instead (e.g. the fuzzer's random image).
class InitialImage {
 public:
  virtual ~InitialImage() = default;
  virtual expr::ExprRef byteAt(symex::ExecState& st, std::uint32_t addr);
  static std::string variableName(std::uint32_t addr);
};

class SymbolicDataMemory final : public iss::DataMemoryIf {
 public:
  explicit SymbolicDataMemory(InitialImage& image) : image_(image) {}

  // --- ISS binding (sign handling is the ISS's job) -----------------------
  expr::ExprRef loadByte(symex::ExecState& st,
                         const expr::ExprRef& addr) override;
  expr::ExprRef loadHalf(symex::ExecState& st,
                         const expr::ExprRef& addr) override;
  expr::ExprRef loadWord(symex::ExecState& st,
                         const expr::ExprRef& addr) override;
  void storeByte(symex::ExecState& st, const expr::ExprRef& addr,
                 const expr::ExprRef& value8) override;
  void storeHalf(symex::ExecState& st, const expr::ExprRef& addr,
                 const expr::ExprRef& value16) override;
  void storeWord(symex::ExecState& st, const expr::ExprRef& addr,
                 const expr::ExprRef& value32) override;

  // --- Strobe-based testbench interface (paper §IV-C.2) --------------------
  /// Returns the full 32-bit word at the (concrete, word-aligned)
  /// address; the strobe documents which lanes the core will consume.
  expr::ExprRef loadStrobed(symex::ExecState& st, std::uint32_t word_addr,
                            std::uint8_t strobe);
  /// Writes the byte lanes selected by `strobe` from `wdata`.
  void storeStrobed(symex::ExecState& st, std::uint32_t word_addr,
                    std::uint8_t strobe, const expr::ExprRef& wdata);

  // --- Concrete byte access (tests, replay) ----------------------------------
  expr::ExprRef byteAt(symex::ExecState& st, std::uint32_t addr);
  void setByte(std::uint32_t addr, expr::ExprRef value8);

 private:
  InitialImage& image_;
  std::unordered_map<std::uint32_t, expr::ExprRef> overlay_;
};

}  // namespace rvsym::core
