#include "core/classify.hpp"

#include <set>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "rv32/csr.hpp"
#include "rv32/instr.hpp"

namespace rvsym::core {

namespace {

using rv32::Opcode;

bool specImplementsCsr(std::uint16_t addr) {
  using namespace rv32::csr;
  switch (addr) {
    case kMvendorid:
    case kMarchid:
    case kMimpid:
    case kMhartid:
    case kMstatus:
    case kMisa:
    case kMedeleg:
    case kMideleg:
    case kMie:
    case kMtvec:
    case kMcounteren:
    case kMscratch:
    case kMepc:
    case kMcause:
    case kMtval:
    case kMip:
    case kMcycle:
    case kMinstret:
    case kMcycleh:
    case kMinstreth:
    case kCycle:
    case kTime:
    case kInstret:
    case kCycleh:
    case kTimeh:
    case kInstreth:
      return true;
    default:
      return isMhpmcounter(addr) || isMhpmcounterh(addr) || isMhpmevent(addr);
  }
}

}  // namespace

std::optional<Finding> classifyErrorPath(const symex::PathRecord& record) {
  std::string field;
  std::uint32_t pc = 0;
  if (!parseMismatchMessage(record.message, field, pc)) return std::nullopt;
  if (!record.has_test) return std::nullopt;

  const auto word = record.test.lookup(SymbolicInstrMemory::variableName(pc));
  if (!word) return std::nullopt;
  const auto instr = static_cast<std::uint32_t>(*word);
  const rv32::Decoded d = rv32::decode(instr);

  Finding f;
  f.witness_instr = instr;
  f.example = rv32::disassemble(instr);
  f.voter_field = field;
  f.subject = rv32::opcodeName(d.op);

  // --- Alignment family (load/store trap-vs-support) -----------------------
  if ((rv32::isLoad(d.op) || rv32::isStore(d.op)) &&
      (field == "trap" || field == "trap_cause")) {
    f.description = "Missing alignment check";
    f.r_class = "M";
    // Upper-case mnemonic as in Table I.
    for (char& c : f.subject) c = static_cast<char>(std::toupper(c));
    return f;
  }

  // --- WFI ------------------------------------------------------------------
  if (d.op == Opcode::Wfi) {
    f.subject = "WFI";
    f.description = "Missing WFI instruction";
    f.r_class = "E";
    return f;
  }

  // --- CSR family -------------------------------------------------------------
  if (rv32::isCsrOp(d.op)) {
    const std::uint16_t csr = d.csr;
    const char* name = rv32::csrName(csr);
    using namespace rv32::csr;

    if (!specImplementsCsr(csr)) {
      f.subject = "unimpl. CSRs";
      f.description = "Missing trap at access";
      f.r_class = "E";
      return f;
    }
    f.subject = name ? name : "csr";

    if (csr == kMedeleg || csr == kMideleg) {
      f.description = std::string("VP traps at ") + f.subject + " read";
      f.r_class = "E*";
      return f;
    }
    if (csr == kMarchid || csr == kMvendorid || csr == kMimpid ||
        csr == kMhartid) {
      f.description = "Missing trap at write";
      f.r_class = "E";
      return f;
    }
    if (csr == kMip || csr == kMcycle || csr == kMinstret ||
        csr == kMcycleh || csr == kMinstreth) {
      if (field == "trap" || field == "trap_cause") {
        f.description = "Trap at write access";
        f.r_class = "E";
      } else {
        f.description = "Cycle Count Mismatch";
        f.r_class = "M";
      }
      return f;
    }
    if (isUnprivilegedCounter(csr)) {
      f.description = "unimpl. Unprivileged CSR";
      f.r_class = "M";
      return f;
    }
    if (isMhpmcounter(csr) || isMhpmcounterh(csr) || isMhpmevent(csr) ||
        csr == kMscratch || csr == kMcounteren) {
      if (isMhpmcounter(csr)) f.subject = "mhpmcounter3-31";
      if (isMhpmcounterh(csr)) f.subject = "mhpmcounter3-31h";
      if (isMhpmevent(csr)) f.subject = "mhpmevent3-31";
      f.description = "unimpl. Privileged CSR";
      f.r_class = "M";
      return f;
    }
    f.description = "CSR behaviour differs (" + field + ")";
    f.r_class = "M";
    return f;
  }

  // --- Fallback: injected-fault style divergences -----------------------------
  f.description = "behaviour differs (" + field + ")";
  f.r_class = "E";
  return f;
}

std::vector<Finding> classifyReport(const symex::EngineReport& report) {
  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (const symex::PathRecord& p : report.paths) {
    if (p.end != symex::PathEnd::Error) continue;
    if (std::optional<Finding> f = classifyErrorPath(p)) {
      if (seen.insert(f->key()).second) findings.push_back(std::move(*f));
    }
  }
  return findings;
}

}  // namespace rvsym::core
