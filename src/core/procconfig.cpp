#include "core/procconfig.hpp"

namespace rvsym::core {

namespace {

iss::CsrConfig deriveCsrConfig(const ProcessorConfig& pc) {
  iss::CsrConfig c;  // spec-correct defaults, no quirks
  c.has_unprivileged_counters = pc.full_csr_set;
  c.has_mhpm = pc.full_csr_set;
  c.has_mscratch = pc.full_csr_set;
  c.has_mcounteren = pc.full_csr_set;
  c.trap_on_unimplemented = pc.spec_traps;
  c.trap_on_readonly_write = pc.spec_traps;
  c.cycle_counts_instructions = pc.abstract_timing;
  return c;
}

}  // namespace

rtl::RtlConfig ProcessorConfig::rtlConfig() const {
  rtl::RtlConfig c;
  c.csr = deriveCsrConfig(*this);
  c.support_misaligned = misaligned_access_support;
  c.missing_wfi = !implement_wfi;
  c.enable_interrupts = interrupts;
  // Instruction-consistent counting on both sides.
  c.count_instret_at_execute = false;
  c.reset_pc = reset_pc;
  return c;
}

iss::IssConfig ProcessorConfig::issConfig() const {
  iss::IssConfig c;
  c.csr = deriveCsrConfig(*this);
  c.trap_misaligned = !misaligned_access_support;
  c.enable_interrupts = interrupts;
  c.trap_on_wfi = !implement_wfi;
  c.reset_pc = reset_pc;
  return c;
}

ProcessorConfig ProcessorConfig::specCompliant() { return ProcessorConfig{}; }

ProcessorConfig ProcessorConfig::minimalController() {
  ProcessorConfig pc;
  pc.misaligned_access_support = true;
  pc.implement_wfi = true;
  pc.full_csr_set = false;
  pc.spec_traps = false;
  pc.interrupts = false;
  return pc;
}

}  // namespace rvsym::core
