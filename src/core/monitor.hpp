// RVFI self-consistency monitor (riscv-formal's checking role).
//
// The paper positions its co-simulation against riscv-formal's BMC-based
// checks; this monitor implements the complementary per-retirement
// consistency properties riscv-formal enforces on the RVFI stream, so a
// single processor model can be sanity-checked WITHOUT a reference
// model:
//   * PC chaining: each retirement starts where the previous one ended;
//   * x0 discipline: a write to x0 must report the value 0;
//   * trap discipline: trapping instructions retire no register write
//     and no memory access, and report a valid cause;
//   * memory channel sanity: sizes in {1,2,4}, access address present;
//   * control-flow alignment: next_pc is IALIGN-aligned.
//
// Checks over symbolic values are answered with mustBeTrue (a violation
// needs only one satisfying assignment to be real).
#pragma once

#include <optional>
#include <string>

#include "iss/retire.hpp"
#include "symex/state.hpp"

namespace rvsym::core {

class RvfiMonitor {
 public:
  /// Checks one retirement; returns a violation description, if any.
  /// Maintains the chaining state across calls.
  std::optional<std::string> check(symex::ExecState& st,
                                   const iss::RetireInfo& r);

  /// Resets the chaining state (new program / new path).
  void reset() { have_prev_ = false; }

  std::uint64_t checkedRetirements() const { return checked_; }

 private:
  bool have_prev_ = false;
  expr::ExprRef prev_next_pc_;
  std::uint64_t checked_ = 0;
};

}  // namespace rvsym::core
