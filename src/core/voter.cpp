#include "core/voter.hpp"

#include <sstream>

#include "rv32/instr.hpp"

namespace rvsym::core {

using expr::ExprRef;
using symex::ExecState;

namespace {

/// Forks on "a != b"; returns true on the differing side.
bool mayDiffer(ExecState& st, const ExprRef& a, const ExprRef& b) {
  return st.branch(st.builder().ne(a, b));
}

}  // namespace

std::optional<Mismatch> Voter::compare(ExecState& st,
                                       const iss::RetireInfo& rtl,
                                       const iss::RetireInfo& iss) {
  // Trap presence is concrete control state in both models.
  st.addTag("voter:trap");
  if (rtl.trap != iss.trap) {
    std::ostringstream os;
    os << "rtl " << (rtl.trap ? "traps" : "does not trap") << " (cause "
       << rtl.cause << "), iss " << (iss.trap ? "traps" : "does not trap")
       << " (cause " << iss.cause << ")";
    return Mismatch{"trap", os.str()};
  }
  if (rtl.trap && iss.trap && rtl.cause != iss.cause) {
    std::ostringstream os;
    os << "trap cause differs: rtl " << rtl.cause << ", iss " << iss.cause;
    return Mismatch{"trap_cause", os.str()};
  }

  st.addTag("voter:pc");
  if (mayDiffer(st, rtl.pc, iss.pc))
    return Mismatch{"pc", "retired PC differs"};
  st.addTag("voter:next_pc");
  if (mayDiffer(st, rtl.next_pc, iss.next_pc))
    return Mismatch{"next_pc", "next PC differs"};

  const bool rtl_rd = rtl.rd_index != nullptr;
  const bool iss_rd = iss.rd_index != nullptr;
  if (rtl_rd != iss_rd) {
    return Mismatch{"rd_channel",
                    rtl_rd ? "rtl writes a register, iss does not"
                           : "iss writes a register, rtl does not"};
  }
  if (rtl_rd) {
    st.addTag("voter:rd");
    if (mayDiffer(st, rtl.rd_index, iss.rd_index))
      return Mismatch{"rd_index", "destination register differs"};
    if (mayDiffer(st, rtl.rd_value, iss.rd_value))
      return Mismatch{"rd_value", "destination register value differs"};
  }

  if (rtl.mem_valid != iss.mem_valid) {
    return Mismatch{"mem_channel",
                    rtl.mem_valid ? "rtl accesses memory, iss does not"
                                  : "iss accesses memory, rtl does not"};
  }
  if (rtl.mem_valid) {
    st.addTag("voter:mem");
    if (rtl.mem_is_store != iss.mem_is_store)
      return Mismatch{"mem_dir", "load/store direction differs"};
    if (rtl.mem_size != iss.mem_size)
      return Mismatch{"mem_size", "access size differs"};
    if (mayDiffer(st, rtl.mem_addr, iss.mem_addr))
      return Mismatch{"mem_addr", "access address differs"};
    if (mayDiffer(st, rtl.mem_data, iss.mem_data))
      return Mismatch{"mem_data", "access data differs"};
  }
  return std::nullopt;
}

std::string Voter::describe(const Mismatch& m) {
  return "voter mismatch [" + m.field + "]: " + m.detail;
}

}  // namespace rvsym::core
