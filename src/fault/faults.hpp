// The injected-error set E0-E9 of the paper's performance evaluation
// (§V-B), as a registry the Table II bench and the examples share.
//
// Each error is a named point of the machine-enumerated mutation space
// (src/mut): E0-E2 are decoder faults ("mark a bit as don't care in the
// decode table"), E3-E9 datapath faults from the parameterized
// ExecFaults families. The registry adds the paper's naming and prose;
// injection itself delegates to mut::Mutant::apply so there is exactly
// one fault-injection code path.
//
// Note on E2: the paper's text names SRLI for both E1 and E2; we read E2
// as the arithmetic right shift SRAI (the same funct7 bit), which keeps
// the ten errors distinct (documented in DESIGN.md).
#pragma once

#include <span>
#include <string>

#include "mut/space.hpp"

namespace rvsym::fault {

struct InjectedError {
  const char* id;           ///< "E0" .. "E9"
  const char* target;       ///< affected instruction
  const char* description;  ///< paper's description
  const char* mutant_id;    ///< the mutation-space point, e.g. "dec:slli:b25"

  /// This error as a mutation-space point.
  mut::Mutant mutant() const { return mut::mutantById(mutant_id); }

  /// Decoder fault (E0-E2) vs. datapath fault (E3-E9)?
  bool isDecoderFault() const {
    return mutant().kind == mut::MutantKind::DecodeBit;
  }

  /// Applies this error to a co-simulation configuration.
  void apply(core::CosimConfig& config) const { mutant().apply(config); }
};

/// All ten errors, in paper order.
std::span<const InjectedError> allErrors();

/// Corner-case extension errors X0/X1 (not from the paper): single-value
/// bugs used to demonstrate the fuzzing-vs-symbolic-execution gap.
std::span<const InjectedError> extensionErrors();

/// Lookup by id ("E0".."E9", "X0".."X1"); throws std::out_of_range on
/// unknown ids.
const InjectedError& errorById(const std::string& id);

}  // namespace rvsym::fault
