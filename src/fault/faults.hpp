// The injected-error set E0-E9 of the paper's performance evaluation
// (§V-B), as a registry the Table II bench and the examples share.
//
// E0-E2 are decoder faults ("mark a bit as don't care in the decode
// table"), realized by clearing a mask bit of the instruction's decode
// pattern; E3-E9 are datapath faults realized by ExecFaults switches in
// the RTL core.
//
// Note on E2: the paper's text names SRLI for both E1 and E2; we read E2
// as the arithmetic right shift SRAI (the same funct7 bit), which keeps
// the ten errors distinct (documented in DESIGN.md).
#pragma once

#include <span>
#include <string>

#include "core/cosim.hpp"

namespace rvsym::fault {

struct InjectedError {
  const char* id;           ///< "E0" .. "E9"
  const char* target;       ///< affected instruction
  const char* description;  ///< paper's description

  /// Decoder fault (E0-E2): clear this mask bit of the target's pattern.
  bool has_dont_care = false;
  core::CosimConfig::DecodeDontCare dont_care{};

  /// Datapath fault (E3-E9).
  bool rtl::ExecFaults::*flag = nullptr;

  /// Applies this error to a co-simulation configuration.
  void apply(core::CosimConfig& config) const;
};

/// All ten errors, in paper order.
std::span<const InjectedError> allErrors();

/// Corner-case extension errors X0/X1 (not from the paper): single-value
/// bugs used to demonstrate the fuzzing-vs-symbolic-execution gap.
std::span<const InjectedError> extensionErrors();

/// Lookup by id ("E0".."E9", "X0".."X1"); throws std::out_of_range on
/// unknown ids.
const InjectedError& errorById(const std::string& id);

}  // namespace rvsym::fault
