#include "fault/faults.hpp"

#include <array>
#include <stdexcept>

namespace rvsym::fault {

using core::CosimConfig;
using rtl::ExecFaults;
using rv32::Opcode;

void InjectedError::apply(CosimConfig& config) const {
  if (has_dont_care) config.decode_dont_cares.push_back(dont_care);
  if (flag) config.faults.*flag = true;
}

namespace {

// Bit 25 is the "7th highest bit" of the encoding: the low bit of
// funct7, which separates SLLI/SRLI/SRAI from the reserved RV64-adjacent
// encodings the paper describes for E0-E2.
constexpr unsigned kFunct7LowBit = 25;

const std::array<InjectedError, 10> kErrors{{
    {"E0", "SLLI", "don't-care bit in SLLI decoding (bit 25)",
     true, {Opcode::Slli, kFunct7LowBit}, nullptr},
    {"E1", "SRLI", "don't-care bit in SRLI decoding (bit 25)",
     true, {Opcode::Srli, kFunct7LowBit}, nullptr},
    {"E2", "SRAI", "don't-care bit in SRAI decoding (bit 25)",
     true, {Opcode::Srai, kFunct7LowBit}, nullptr},
    {"E3", "ADDI", "stuck-at-0 fault at lowest result bit of ADDI",
     false, {}, &ExecFaults::addi_result_bit0_stuck0},
    {"E4", "SUB", "stuck-at-0 fault at highest result bit of SUB",
     false, {}, &ExecFaults::sub_result_bit31_stuck0},
    {"E5", "JAL", "JAL does not change the PC",
     false, {}, &ExecFaults::jal_no_pc_update},
    {"E6", "BNE", "BNE behaves as BEQ",
     false, {}, &ExecFaults::bne_behaves_as_beq},
    {"E7", "LBU", "endianness of LBU memory access flipped",
     false, {}, &ExecFaults::lbu_endianness_flip},
    {"E8", "LB", "sign extension removed from LB",
     false, {}, &ExecFaults::lb_no_sign_extend},
    {"E9", "LW", "LW loads only the lower 16 bits",
     false, {}, &ExecFaults::lw_low_half_only},
}};

const std::array<InjectedError, 2> kExtensionErrors{{
    {"X0", "ADD", "ADD result corrupted only when rs2 == 0xCAFEBABE",
     false, {}, &ExecFaults::add_wrong_on_magic},
    {"X1", "BLT", "BLT decides wrongly only when rs1 == INT32_MIN",
     false, {}, &ExecFaults::blt_wrong_at_int_min},
}};

}  // namespace

std::span<const InjectedError> allErrors() { return kErrors; }

std::span<const InjectedError> extensionErrors() { return kExtensionErrors; }

const InjectedError& errorById(const std::string& id) {
  for (const InjectedError& e : kErrors)
    if (id == e.id) return e;
  for (const InjectedError& e : kExtensionErrors)
    if (id == e.id) return e;
  throw std::out_of_range("unknown injected error: " + id);
}

}  // namespace rvsym::fault
