#include "fault/faults.hpp"

#include <array>
#include <stdexcept>

namespace rvsym::fault {

namespace {

// Bit 25 is the "7th highest bit" of the encoding: the low bit of
// funct7, which separates SLLI/SRLI/SRAI from the reserved RV64-adjacent
// encodings the paper describes for E0-E2.
const std::array<InjectedError, 10> kErrors{{
    {"E0", "SLLI", "don't-care bit in SLLI decoding (bit 25)",
     "dec:slli:b25"},
    {"E1", "SRLI", "don't-care bit in SRLI decoding (bit 25)",
     "dec:srli:b25"},
    {"E2", "SRAI", "don't-care bit in SRAI decoding (bit 25)",
     "dec:srai:b25"},
    {"E3", "ADDI", "stuck-at-0 fault at lowest result bit of ADDI",
     "stuck:addi:b0=0"},
    {"E4", "SUB", "stuck-at-0 fault at highest result bit of SUB",
     "stuck:sub:b31=0"},
    {"E5", "JAL", "JAL does not change the PC",
     "flag:jal_no_pc_update"},
    {"E6", "BNE", "BNE behaves as BEQ",
     "swap:bne:beq"},
    {"E7", "LBU", "endianness of LBU memory access flipped",
     "mem:lbu:endian"},
    {"E8", "LB", "sign extension removed from LB",
     "mem:lb:signflip"},
    {"E9", "LW", "LW loads only the lower 16 bits",
     "mem:lw:lowhalf"},
}};

const std::array<InjectedError, 2> kExtensionErrors{{
    {"X0", "ADD", "ADD result corrupted only when rs2 == 0xCAFEBABE",
     "flag:add_wrong_on_magic"},
    {"X1", "BLT", "BLT decides wrongly only when rs1 == INT32_MIN",
     "flag:blt_wrong_at_int_min"},
}};

}  // namespace

std::span<const InjectedError> allErrors() { return kErrors; }

std::span<const InjectedError> extensionErrors() { return kExtensionErrors; }

const InjectedError& errorById(const std::string& id) {
  for (const InjectedError& e : kErrors)
    if (id == e.id) return e;
  for (const InjectedError& e : kExtensionErrors)
    if (id == e.id) return e;
  throw std::out_of_range("unknown injected error: " + id);
}

}  // namespace rvsym::fault
