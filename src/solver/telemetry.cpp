#include "solver/telemetry.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/flightrec/ring.hpp"
#include "obs/trace_events.hpp"
#include "solver/corpus.hpp"

namespace rvsym::solver {

namespace {

std::uint64_t dedupKey(const CanonHash& h) {
  return h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL);
}

std::string hashBasename(const CanonHash& h) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "q_%016llx%016llx",
                static_cast<unsigned long long>(h.hi),
                static_cast<unsigned long long>(h.lo));
  return buf;
}

bool writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

void SolverTelemetry::attachMetrics(obs::MetricsRegistry& registry) {
  m_queries_ = &registry.counter("solver.queries");
  m_slow_ = &registry.counter("solver.slow_queries");
  m_bitblast_us_ = &registry.histogram("solver.bitblast_us");
  m_sat_us_ = &registry.histogram("solver.sat_us");
  m_nodes_ = &registry.histogram("solver.query_nodes");
}

bool SolverTelemetry::record(const Query& q) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (m_queries_) m_queries_->add();
  if (spans_ != nullptr) {
    // The span ends now (record() runs right after the check) and
    // covers the measured bitblast+SAT work; cache-answered queries
    // become zero-duration markers on the worker's track.
    spans_->addEnding(
        dispositionName(q.disposition), "solver", q.bitblast_us + q.sat_us,
        {{"disposition",
          "\"" + std::string(dispositionName(q.disposition)) + "\""},
         {"verdict", "\"" + std::string(verdictName(q.verdict)) + "\""},
         {"expr_nodes", std::to_string(q.expr_nodes)},
         {"sat_vars", std::to_string(q.sat_vars)},
         {"sat_clauses", std::to_string(q.sat_clauses)},
         {"bitblast_us", std::to_string(q.bitblast_us)},
         {"sat_us", std::to_string(q.sat_us)}});
  }
  switch (q.disposition) {
    case Disposition::Hit:
    case Disposition::CexModel:
    case Disposition::CexCore:
    case Disposition::Rewrite:
      return false;  // answered without bit-blasting or solving
    default:
      break;
  }

  if (m_bitblast_us_) m_bitblast_us_->record(q.bitblast_us);
  if (m_sat_us_) m_sat_us_->record(q.sat_us);
  if (m_nodes_) m_nodes_->record(q.expr_nodes);

  if (opts_.slow_query_us == 0) return false;
  if (q.bitblast_us + q.sat_us < opts_.slow_query_us) return false;
  slow_.fetch_add(1, std::memory_order_relaxed);
  if (m_slow_) m_slow_->add();

  // Unknown verdicts are conflict-budget artifacts; replaying them
  // offline (unbudgeted) would legitimately disagree, so never dump.
  if (q.verdict == CheckResult::Unknown) return false;
  if (opts_.corpus_dir.empty()) return false;
  const std::lock_guard<std::mutex> lk(mu_);
  return dumped_keys_.insert(dedupKey(q.hash)).second;
}

bool SolverTelemetry::dump(const Query& q,
                           const std::vector<expr::ExprRef>& constraints,
                           const expr::ExprRef& assumption,
                           const std::string& dimacs) {
  CorpusQuery cq;
  cq.constraints = constraints;
  cq.assumption = assumption;
  cq.verdict = q.verdict;
  cq.sat_us = q.sat_us;
  cq.bitblast_us = q.bitblast_us;
  const std::string text = formatQuery(cq);
  if (text.empty()) return false;

  const std::lock_guard<std::mutex> lk(mu_);
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.corpus_dir, ec);
    if (ec) return false;
    dir_ready_ = true;
  }
  const std::string base = opts_.corpus_dir + "/" + hashBasename(q.hash);
  if (!writeFile(base + ".query", text)) return false;
  if (!writeFile(base + ".cnf", dimacs)) return false;
  dumped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SolverTelemetry::captureInFlight(
    const std::vector<expr::ExprRef>& constraints,
    const expr::ExprRef& assumption, const CanonHash& key) {
#ifndef RVSYM_OBS_NO_TRACING
  if (!inFlightCapture()) return;
  // The payload lands in this thread's InFlightSlot, which truncates to
  // its fixed capacity — so bound the serialization work by that
  // capacity instead of walking the whole constraint DAG per solve, and
  // skip the render entirely when the thread has no ring to publish to.
  obs::flightrec::ThreadRing* ring = obs::flightrec::currentRing();
  if (ring == nullptr) return;
  const std::string text = formatQueryBounded(constraints, assumption,
                                              ring->inflight().capacity());
  if (text.empty()) return;
  ring->inflight().set(text.data(), text.size(), key.lo, key.hi);
#else
  (void)constraints;
  (void)assumption;
  (void)key;
#endif
}

void SolverTelemetry::clearInFlight() {
#ifndef RVSYM_OBS_NO_TRACING
  if (inFlightCapture()) obs::flightrec::inflightClear();
#endif
}

const char* dispositionName(SolverTelemetry::Disposition d) {
  switch (d) {
    case SolverTelemetry::Disposition::Uncached:
      return "uncached";
    case SolverTelemetry::Disposition::Hit:
      return "exact";
    case SolverTelemetry::Disposition::Miss:
      return "solve";
    case SolverTelemetry::Disposition::CexModel:
      return "cex-model";
    case SolverTelemetry::Disposition::CexCore:
      return "cex-core";
    case SolverTelemetry::Disposition::Rewrite:
      return "rewrite";
    case SolverTelemetry::Disposition::Sliced:
      return "slice";
  }
  return "?";
}

}  // namespace rvsym::solver
