// SolverOptions — ablation toggles for the layered query-answering
// pipeline in PathSolver::check() (see DESIGN.md §10).
//
// Every layer is individually switchable so benchmarks can isolate each
// one's contribution (--solver-opt=). All layers are *sound*: they only
// change how a verdict is obtained, never which verdict — and model()
// stays a pure function of the constraint set — so verdicts, test
// vectors and repro bundles are byte-identical for any combination.
#pragma once

#include <string>
#include <string_view>

namespace rvsym::solver {

struct SolverOptions {
  /// Counterexample cache: satisfying models keyed by canonical
  /// constraint-set hash (shared across paths/workers) plus the
  /// path-local last model, reused by evaluating the assumption; UNSAT
  /// entries answered by core-subset subsumption.
  bool cex_cache = true;
  /// UNSAT-core extraction: conjuncts are solved as assumption literals
  /// and the CDCL final conflict is mapped back to the contributing
  /// conjuncts, so stored UNSAT entries are minimized.
  bool unsat_cores = true;
  /// Pre-bitblast rewrite of the assumption: equality substitution from
  /// the constraint set plus extract/zero-extend narrowing; assumptions
  /// that collapse to a constant never reach the SAT solver.
  bool rewrite = true;
  /// Independent-constraint slicing: the conjunction is partitioned by
  /// shared symbolic variables and only the slice connected to the
  /// assumption is passed to the SAT solver.
  bool slicing = true;

  bool any() const { return cex_cache || unsat_cores || rewrite || slicing; }
  /// True iff conjuncts are solved as selector assumptions instead of
  /// asserted unit clauses (required by slicing and core extraction).
  bool selectorMode() const { return unsat_cores || slicing; }

  static SolverOptions all() { return SolverOptions{}; }
  static SolverOptions none() { return {false, false, false, false}; }

  friend bool operator==(const SolverOptions&, const SolverOptions&) = default;
};

/// Parses a --solver-opt= spec: "all", "none", or a comma-separated list
/// of layer names from {cex, cores, rewrite, slice} (listed layers on,
/// the rest off). Returns false (and sets *error) on an unknown token.
bool parseSolverOpt(std::string_view spec, SolverOptions* out,
                    std::string* error = nullptr);

/// Canonical spec string for `o` ("all", "none", or the comma list) —
/// parseSolverOpt(solverOptName(o)) round-trips.
std::string solverOptName(const SolverOptions& o);

}  // namespace rvsym::solver
