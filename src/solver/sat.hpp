// Minimal-but-real CDCL SAT solver (MiniSat lineage).
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, VSIDS decision heuristic over a
// binary heap, phase saving, Luby restarts, learned-clause database
// reduction, and incremental solving under assumptions (clauses may be
// added between solve() calls).
//
// This is the decision procedure behind the bit-vector solver used by the
// symbolic co-simulation engine; instances are small (thousands of
// variables) but are issued at high rate, so the implementation favours
// cheap incremental reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rvsym::solver {

using Var = int;  // 0-based

/// A literal: variable + sign, packed as 2*var + sign (sign=1 is negated).
struct Lit {
  int x = -2;

  constexpr bool operator==(const Lit&) const = default;
};

constexpr Lit mkLit(Var v, bool neg = false) { return Lit{v * 2 + (neg ? 1 : 0)}; }
constexpr Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
constexpr bool sign(Lit l) { return (l.x & 1) != 0; }
constexpr Var var(Lit l) { return l.x >> 1; }
constexpr Lit kLitUndef{-2};

enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolXor(LBool b, bool flip) {
  if (b == LBool::Undef) return b;
  return (b == LBool::True) != flip ? LBool::True : LBool::False;
}

class SatSolver {
 public:
  enum class Result { Sat, Unsat, Unknown };

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnt_clauses = 0;
    std::uint64_t solves = 0;
  };

  SatSolver() = default;

  /// Creates a fresh variable and returns it.
  Var newVar();
  int numVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. Returns false iff the solver became trivially
  /// unsatisfiable (conflicting unit at level 0).
  bool addClause(std::vector<Lit> lits);
  bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
  bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
  bool addClause(Lit a, Lit b, Lit c) {
    return addClause(std::vector<Lit>{a, b, c});
  }

  /// Solves under the given assumptions. `max_conflicts` of 0 means no
  /// budget (never returns Unknown).
  Result solve(const std::vector<Lit>& assumptions = {},
               std::uint64_t max_conflicts = 0);

  /// Model access after solve() returned Sat.
  LBool modelValue(Var v) const { return model_[static_cast<size_t>(v)]; }
  bool modelValueBool(Lit l) const {
    return lboolXor(model_[static_cast<size_t>(var(l))], sign(l)) == LBool::True;
  }

  bool okay() const { return ok_; }
  const Stats& stats() const { return stats_; }

  /// After solve() returned Unsat: the subset of the assumption literals
  /// whose conjunction with the clause database is unsatisfiable (an
  /// UNSAT core over the assumptions, MiniSat's analyzeFinal). Empty iff
  /// the clauses alone are unsatisfiable. Not minimal, but typically far
  /// smaller than the full assumption set.
  const std::vector<Lit>& conflict() const { return conflict_; }

  /// Number of live problem (non-learnt) clauses.
  std::size_t numProblemClauses() const;

  /// Renders the problem clauses (plus `assumptions` as unit clauses) in
  /// DIMACS CNF format — the exchange format the slow-query corpus pairs
  /// with each serialized expression query. Learnt clauses are implied
  /// and deliberately omitted so the export is solver-state independent.
  std::string exportDimacs(const std::vector<Lit>& assumptions = {}) const;

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };
  using ClauseRef = int;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // -- Assignment trail ----------------------------------------------------
  LBool value(Var v) const { return assigns_[static_cast<size_t>(v)]; }
  LBool value(Lit l) const {
    return lboolXor(assigns_[static_cast<size_t>(var(l))], sign(l));
  }
  int decisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void newDecisionLevel() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  void uncheckedEnqueue(Lit l, ClauseRef from);
  void cancelUntil(int level);

  // -- Search --------------------------------------------------------------
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool litRedundant(Lit l, std::uint32_t abstract_levels);
  Lit pickBranchLit();
  Result search(const std::vector<Lit>& assumptions, std::uint64_t conflict_budget);
  void analyzeFinal(Lit p);
  void reduceDB();
  void attachClause(ClauseRef cref);

  // -- VSIDS ----------------------------------------------------------------
  void varBumpActivity(Var v);
  void varDecayActivity() { var_inc_ *= (1.0 / 0.95); }
  void claBumpActivity(Clause& c);
  void claDecayActivity() { cla_inc_ *= (1.0 / 0.999); }
  void heapInsert(Var v);
  void heapPercolateUp(int i);
  void heapPercolateDown(int i);
  Var heapRemoveMin();
  bool heapEmpty() const { return heap_.empty(); }

  std::vector<Clause> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit.x

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<bool> polarity_;  // saved phases (true = last assigned false)
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  std::vector<int> heap_;       // binary min-heap of vars by -activity
  std::vector<int> heap_pos_;   // var -> index in heap_ (-1 if absent)

  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  std::vector<Lit> conflict_;

  bool ok_ = true;
  Stats stats_;
};

}  // namespace rvsym::solver
