#include "solver/cexcache.hpp"

#include <algorithm>

namespace rvsym::solver {

std::optional<std::uint64_t> CexCache::Model::get(const CanonHash& var) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), var,
      [](const std::pair<CanonHash, std::uint64_t>& a, const CanonHash& b) {
        return a.first.hi != b.hi ? a.first.hi < b.hi : a.first.lo < b.lo;
      });
  if (it == values.end() || !(it->first == var)) return std::nullopt;
  return it->second;
}

void CexCache::Model::sort() {
  std::sort(values.begin(), values.end(),
            [](const std::pair<CanonHash, std::uint64_t>& a,
               const std::pair<CanonHash, std::uint64_t>& b) {
              return a.first.hi != b.first.hi ? a.first.hi < b.first.hi
                                              : a.first.lo < b.first.lo;
            });
}

CexCache::CexCache(unsigned shards) : shards_(shards == 0 ? 1 : shards) {}

void CexCache::attachMetrics(obs::MetricsRegistry& registry) {
  metric_model_hits_ = &registry.counter("cexcache.model_hits");
  metric_core_hits_ = &registry.counter("cexcache.core_hits");
}

void CexCache::insertModel(const CanonHash& set_hash, Model model) {
  model.sort();
  Shard& s = shardFor(set_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.map.size() >= kMaxModelsPerShard) return;
  if (s.map.emplace(set_hash, std::move(model)).second)
    models_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<CexCache::Model> CexCache::lookupModel(const CanonHash& set_hash) {
  model_lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shardFor(set_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(set_hash);
  if (it == s.map.end()) return std::nullopt;
  model_hits_.fetch_add(1, std::memory_order_relaxed);
  if (metric_model_hits_) metric_model_hits_->add(1);
  return it->second;
}

void CexCache::insertCore(std::vector<CanonHash> elems) {
  if (elems.empty() || elems.size() > kMaxCoreElems) return;
  // Dedup elements, then key the core by its commutative set hash.
  std::sort(elems.begin(), elems.end(), [](const CanonHash& a,
                                           const CanonHash& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  });
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  CanonHash key;
  for (const CanonHash& e : elems) key = canonSetAdd(key, e);

  std::lock_guard<std::mutex> lock(cores_mu_);
  if (cores_.size() >= kMaxCores) return;
  if (!core_keys_.emplace(key, 0).second) return;  // duplicate core
  const auto id = static_cast<std::uint32_t>(cores_.size());
  for (const CanonHash& e : elems) by_elem_[e].push_back(id);
  cores_.push_back(std::move(elems));
}

bool CexCache::subsumesUnsat(const std::vector<CanonHash>& query_elems) {
  core_lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cores_mu_);
  if (cores_.empty()) return false;
  // Count, per candidate core, how many of its elements the query
  // contains; a core fully counted is a subset of the query. Query
  // duplicates are skipped so they cannot double-count.
  std::unordered_map<std::uint32_t, std::size_t> matched;
  std::vector<CanonHash> seen;
  seen.reserve(query_elems.size());
  for (const CanonHash& e : query_elems) {
    if (std::find(seen.begin(), seen.end(), e) != seen.end()) continue;
    seen.push_back(e);
    const auto it = by_elem_.find(e);
    if (it == by_elem_.end()) continue;
    for (const std::uint32_t id : it->second) {
      if (++matched[id] == cores_[id].size()) {
        core_hits_.fetch_add(1, std::memory_order_relaxed);
        if (metric_core_hits_) metric_core_hits_->add(1);
        return true;
      }
    }
  }
  return false;
}

CexCache::Stats CexCache::stats() const {
  Stats st;
  st.models = models_.load(std::memory_order_relaxed);
  st.model_hits = model_hits_.load(std::memory_order_relaxed);
  st.model_lookups = model_lookups_.load(std::memory_order_relaxed);
  st.core_hits = core_hits_.load(std::memory_order_relaxed);
  st.core_lookups = core_lookups_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cores_mu_);
    st.cores = cores_.size();
  }
  return st;
}

void CexCache::forEachModel(
    const std::function<void(const CanonHash&, const Model&)>& fn) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [key, model] : shard.map) fn(key, model);
  }
}

void CexCache::forEachCore(
    const std::function<void(const std::vector<CanonHash>&)>& fn) {
  std::lock_guard<std::mutex> lock(cores_mu_);
  for (const std::vector<CanonHash>& core : cores_) fn(core);
}

}  // namespace rvsym::solver
