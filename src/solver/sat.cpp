#include "solver/sat.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace rvsym::solver {

namespace {

/// Luby restart sequence scaled by `base`.
std::uint64_t lubyLimit(std::uint64_t base, int i) {
  // Find the subsequence and index within it.
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return base << seq;
}

}  // namespace

Var SatSolver::newVar() {
  const Var v = numVars();
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  polarity_.push_back(true);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(v);
  return v;
}

bool SatSolver::addClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  assert(decisionLevel() == 0);

  // Sort, remove duplicates, detect tautologies and false literals.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.x < b.x; });
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : lits) {
    if (value(l) == LBool::True || l == ~prev) return true;  // satisfied/taut
    if (value(l) != LBool::False && l != prev) out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    uncheckedEnqueue(out[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }

  const ClauseRef cref = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(out), 0.0, false, false});
  attachClause(cref);
  return true;
}

void SatSolver::attachClause(ClauseRef cref) {
  const Clause& c = clauses_[static_cast<size_t>(cref)];
  assert(c.lits.size() >= 2);
  watches_[static_cast<size_t>((~c.lits[0]).x)].push_back({cref, c.lits[1]});
  watches_[static_cast<size_t>((~c.lits[1]).x)].push_back({cref, c.lits[0]});
}

void SatSolver::uncheckedEnqueue(Lit l, ClauseRef from) {
  assert(value(l) == LBool::Undef);
  const Var v = var(l);
  assigns_[static_cast<size_t>(v)] = sign(l) ? LBool::False : LBool::True;
  level_[static_cast<size_t>(v)] = decisionLevel();
  reason_[static_cast<size_t>(v)] = from;
  trail_.push_back(l);
}

void SatSolver::cancelUntil(int level) {
  if (decisionLevel() <= level) return;
  const int bound = trail_lim_[static_cast<size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = var(trail_[static_cast<size_t>(i)]);
    polarity_[static_cast<size_t>(v)] = sign(trail_[static_cast<size_t>(i)]);
    assigns_[static_cast<size_t>(v)] = LBool::Undef;
    reason_[static_cast<size_t>(v)] = kNoReason;
    if (heap_pos_[static_cast<size_t>(v)] < 0) heapInsert(v);
  }
  trail_.resize(static_cast<size_t>(bound));
  trail_lim_.resize(static_cast<size_t>(level));
  qhead_ = bound;
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<size_t>(qhead_++)];
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[static_cast<size_t>(p.x)];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      // Blocker check: clause already satisfied.
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[static_cast<size_t>(w.cref)];
      if (c.deleted) {
        ++i;  // drop watcher of deleted clause
        continue;
      }
      // Normalize so that the false literal is lits[1].
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;

      const Lit first = c.lits[0];
      if (value(first) == LBool::True) {
        ws[j++] = {w.cref, first};
        continue;
      }
      // Find a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>((~c.lits[1]).x)].push_back(
              {w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;

      // Clause is unit or conflicting.
      ws[j++] = {w.cref, first};
      if (value(first) == LBool::False) {
        // Conflict: copy remaining watchers and return.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = static_cast<int>(trail_.size());
        return w.cref;
      }
      uncheckedEnqueue(first, w.cref);
    }
    ws.resize(j);
  }
  return kNoReason;
}

void SatSolver::varBumpActivity(Var v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  const int pos = heap_pos_[static_cast<size_t>(v)];
  if (pos >= 0) heapPercolateUp(pos);
}

void SatSolver::claBumpActivity(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (ClauseRef cr : learnts_)
      clauses_[static_cast<size_t>(cr)].activity *= 1e-20;
    cla_inc_ *= 1e-20;
  }
}

void SatSolver::heapInsert(Var v) {
  heap_pos_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapPercolateUp(static_cast<int>(heap_.size()) - 1);
}

void SatSolver::heapPercolateUp(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  const double act = activity_[static_cast<size_t>(v)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<size_t>(parent)];
    if (activity_[static_cast<size_t>(pv)] >= act) break;
    heap_[static_cast<size_t>(i)] = pv;
    heap_pos_[static_cast<size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

void SatSolver::heapPercolateDown(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  const double act = activity_[static_cast<size_t>(v)];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])])
      ++child;
    const Var cv = heap_[static_cast<size_t>(child)];
    if (act >= activity_[static_cast<size_t>(cv)]) break;
    heap_[static_cast<size_t>(i)] = cv;
    heap_pos_[static_cast<size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

Var SatSolver::heapRemoveMin() {
  const Var v = heap_[0];
  heap_pos_[static_cast<size_t>(v)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[static_cast<size_t>(last)] = 0;
    heapPercolateDown(0);
  }
  return v;
}

Lit SatSolver::pickBranchLit() {
  while (!heapEmpty()) {
    const Var v = heapRemoveMin();
    if (value(v) == LBool::Undef)
      return mkLit(v, polarity_[static_cast<size_t>(v)]);
  }
  return kLitUndef;
}

void SatSolver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
                        int& out_btlevel) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // placeholder for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    assert(confl != kNoReason);
    Clause& c = clauses_[static_cast<size_t>(confl)];
    if (c.learnt) claBumpActivity(c);

    for (std::size_t k = (p == kLitUndef ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = var(q);
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0)
        continue;
      seen_[static_cast<size_t>(v)] = 1;
      varBumpActivity(v);
      if (level_[static_cast<size_t>(v)] >= decisionLevel())
        ++path_count;
      else
        out_learnt.push_back(q);
    }

    // Select next literal on the trail to expand.
    while (!seen_[static_cast<size_t>(var(trail_[static_cast<size_t>(index)]))])
      --index;
    p = trail_[static_cast<size_t>(index--)];
    confl = reason_[static_cast<size_t>(var(p))];
    seen_[static_cast<size_t>(var(p))] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Minimize: drop literals implied by the rest of the clause.
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i)
    abstract_levels |=
        1u << (level_[static_cast<size_t>(var(out_learnt[i]))] & 31);
  std::size_t j = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Var v = var(out_learnt[i]);
    if (reason_[static_cast<size_t>(v)] == kNoReason ||
        !litRedundant(out_learnt[i], abstract_levels))
      out_learnt[j++] = out_learnt[i];
  }
  out_learnt.resize(j);

  // Find backtrack level: max level among lits[1..].
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i)
      if (level_[static_cast<size_t>(var(out_learnt[i]))] >
          level_[static_cast<size_t>(var(out_learnt[max_i]))])
        max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[static_cast<size_t>(var(out_learnt[1]))];
  }

  for (Lit l : analyze_toclear_) seen_[static_cast<size_t>(var(l))] = 0;
}

bool SatSolver::litRedundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[static_cast<size_t>(var(q))];
    assert(r != kNoReason);
    const Clause& c = clauses_[static_cast<size_t>(r)];
    for (std::size_t i = 1; i < c.lits.size(); ++i) {
      const Lit p = c.lits[i];
      const Var v = var(p);
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0)
        continue;
      if (reason_[static_cast<size_t>(v)] != kNoReason &&
          ((1u << (level_[static_cast<size_t>(v)] & 31)) & abstract_levels) !=
              0) {
        seen_[static_cast<size_t>(v)] = 1;
        analyze_stack_.push_back(p);
        analyze_toclear_.push_back(p);
      } else {
        // Cannot be removed: undo the markings added by this check.
        for (std::size_t k = top; k < analyze_toclear_.size(); ++k)
          seen_[static_cast<size_t>(var(analyze_toclear_[k]))] = 0;
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void SatSolver::reduceDB() {
  // Remove the least active half of the learnt clauses.
  std::sort(learnts_.begin(), learnts_.end(), [&](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<size_t>(a)].activity <
           clauses_[static_cast<size_t>(b)].activity;
  });
  const std::size_t keep_from = learnts_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size() - keep_from);
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    Clause& c = clauses_[static_cast<size_t>(learnts_[i])];
    // Keep clauses that are reasons for current assignments.
    bool locked = false;
    if (c.lits.size() >= 1) {
      const Var v = var(c.lits[0]);
      locked = reason_[static_cast<size_t>(v)] == learnts_[i] &&
               value(c.lits[0]) == LBool::True;
    }
    if (i >= keep_from || locked || c.lits.size() == 2) {
      kept.push_back(learnts_[i]);
    } else {
      c.deleted = true;  // watchers are dropped lazily in propagate()
    }
  }
  learnts_ = std::move(kept);
}

SatSolver::Result SatSolver::search(const std::vector<Lit>& assumptions,
                                    std::uint64_t conflict_budget) {
  int restart_count = 0;
  std::uint64_t conflicts_total = 0;
  std::size_t max_learnts = clauses_.size() / 3 + 1000;

  while (true) {
    std::uint64_t restart_limit = lubyLimit(100, restart_count);
    std::uint64_t conflicts_this_restart = 0;

    while (true) {
      const ClauseRef confl = propagate();
      if (confl != kNoReason) {
        ++stats_.conflicts;
        ++conflicts_total;
        ++conflicts_this_restart;
        if (decisionLevel() == 0) return Result::Unsat;

        std::vector<Lit> learnt;
        int btlevel = 0;
        analyze(confl, learnt, btlevel);
        // Never backtrack past the assumptions.
        cancelUntil(std::max(btlevel, 0));
        if (learnt.size() == 1) {
          if (decisionLevel() != 0) cancelUntil(0);
          if (value(learnt[0]) == LBool::Undef)
            uncheckedEnqueue(learnt[0], kNoReason);
          else if (value(learnt[0]) == LBool::False)
            return Result::Unsat;
        } else {
          const ClauseRef cref = static_cast<ClauseRef>(clauses_.size());
          clauses_.push_back(Clause{std::move(learnt), 0.0, true, false});
          learnts_.push_back(cref);
          ++stats_.learnt_clauses;
          claBumpActivity(clauses_[static_cast<size_t>(cref)]);
          attachClause(cref);
          // The asserting literal propagates at the backtrack level.
          if (decisionLevel() < btlevel) {
            // Backtracked past assumption re-establishment; re-enter loop.
          }
          if (value(clauses_[static_cast<size_t>(cref)].lits[0]) ==
              LBool::Undef)
            uncheckedEnqueue(clauses_[static_cast<size_t>(cref)].lits[0],
                             cref);
        }
        varDecayActivity();
        claDecayActivity();

        if (conflict_budget != 0 && conflicts_total >= conflict_budget)
          return Result::Unknown;
        if (conflicts_this_restart >= restart_limit) {
          cancelUntil(0);
          ++stats_.restarts;
          ++restart_count;
          break;  // restart
        }
        if (learnts_.size() > max_learnts) {
          max_learnts = max_learnts * 11 / 10;
          reduceDB();
        }
        continue;
      }

      // No conflict: extend with assumptions first, then decide.
      Lit next = kLitUndef;
      while (decisionLevel() < static_cast<int>(assumptions.size())) {
        const Lit a = assumptions[static_cast<size_t>(decisionLevel())];
        if (value(a) == LBool::True) {
          newDecisionLevel();  // already satisfied; dummy level
        } else if (value(a) == LBool::False) {
          analyzeFinal(a);       // which assumptions forced ~a
          return Result::Unsat;  // conflicting assumption
        } else {
          next = a;
          break;
        }
      }
      if (next == kLitUndef) {
        ++stats_.decisions;
        next = pickBranchLit();
        if (next == kLitUndef) {
          // All variables assigned: model found.
          model_ = assigns_;
          return Result::Sat;
        }
      }
      newDecisionLevel();
      uncheckedEnqueue(next, kNoReason);
    }
  }
}

void SatSolver::analyzeFinal(Lit p) {
  // `p` is a failed assumption (value(p) == False; ~p is on the trail).
  // Walk the trail top-down from the first decision, expanding reasons;
  // every decision reached is an assumption literal (the trail prefix is
  // built from assumptions before any free decision is made), and joins
  // the core. conflict_ holds the assumption literals themselves.
  conflict_.clear();
  conflict_.push_back(p);
  if (decisionLevel() == 0) return;
  seen_[static_cast<size_t>(var(p))] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[0]; --i) {
    const Var x = var(trail_[i]);
    if (!seen_[static_cast<size_t>(x)]) continue;
    seen_[static_cast<size_t>(x)] = 0;
    const ClauseRef cr = reason_[static_cast<size_t>(x)];
    if (cr == kNoReason) {
      if (level_[static_cast<size_t>(x)] > 0) conflict_.push_back(trail_[i]);
    } else {
      const Clause& c = clauses_[static_cast<size_t>(cr)];
      for (std::size_t j = 1; j < c.lits.size(); ++j)
        if (level_[static_cast<size_t>(var(c.lits[j]))] > 0)
          seen_[static_cast<size_t>(var(c.lits[j]))] = 1;
    }
  }
  seen_[static_cast<size_t>(var(p))] = 0;
}

SatSolver::Result SatSolver::solve(const std::vector<Lit>& assumptions,
                                   std::uint64_t max_conflicts) {
  ++stats_.solves;
  conflict_.clear();
  if (!ok_) return Result::Unsat;
  cancelUntil(0);
  const Result r = search(assumptions, max_conflicts);
  cancelUntil(0);
  if (r == Result::Unsat && assumptions.empty()) ok_ = false;
  return r;
}

std::size_t SatSolver::numProblemClauses() const {
  std::size_t n = 0;
  for (const Clause& c : clauses_)
    if (!c.learnt && !c.deleted) ++n;
  return n;
}

std::string SatSolver::exportDimacs(const std::vector<Lit>& assumptions) const {
  const auto dimacsLit = [](Lit l) {
    return sign(l) ? -(var(l) + 1) : var(l) + 1;
  };
  std::string out;
  char buf[32];
  std::snprintf(buf, sizeof buf, "p cnf %d %zu\n", numVars(),
                numProblemClauses() + assumptions.size());
  out += buf;
  for (const Clause& c : clauses_) {
    if (c.learnt || c.deleted) continue;
    for (const Lit l : c.lits) {
      std::snprintf(buf, sizeof buf, "%d ", dimacsLit(l));
      out += buf;
    }
    out += "0\n";
  }
  for (const Lit l : assumptions) {
    std::snprintf(buf, sizeof buf, "%d 0\n", dimacsLit(l));
    out += buf;
  }
  return out;
}

}  // namespace rvsym::solver
