// Cross-path query cache — shares fork-feasibility verdicts between
// execution paths (and between the worker threads of the parallel
// engine, KLEE's "query cache" adapted to the replay-based design).
//
// A query is identified by a canonical structural hash of its
// (path-constraint set, assumption) pair. The hash is *builder
// independent*: variables are hashed by name, never by pointer or id,
// so two worker threads that build the same decoder constraint in their
// private ExprBuilders produce the same key. The constraint-set
// component is combined commutatively, matching conjunction semantics.
//
// Only definitive verdicts (Sat/Unsat) are stored; Unknown results from
// conflict-budgeted solves are budget-dependent and never cached. A
// cached verdict is a semantic fact about the query, so a hit is valid
// regardless of which path, worker or solver instance produced it.
//
// Thread safety: QueryCache is sharded behind per-shard mutexes and is
// safe for concurrent use. CanonicalHasher is NOT thread-safe — each
// worker owns one (its memo keys on the worker's interned Expr nodes,
// which the owning ExprBuilder keeps alive).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"
#include "obs/metrics.hpp"

namespace rvsym::solver {

/// 128-bit canonical structural hash (two independently mixed 64-bit
/// lanes, so accidental collisions across millions of queries are
/// vanishingly unlikely).
struct CanonHash {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const CanonHash&, const CanonHash&) = default;
};

/// Order-independent accumulation of a set member (conjunction semantics:
/// {a, b} and {b, a} produce the same set hash).
inline CanonHash canonSetAdd(CanonHash set, const CanonHash& member) {
  set.lo += member.lo;
  set.hi += member.hi;
  return set;
}

/// Combines a constraint-set hash with an assumption hash into the final
/// query key (order-sensitive: the assumption is not a set member).
CanonHash canonQueryKey(const CanonHash& constraint_set,
                        const CanonHash& assumption);

/// Memoized builder-independent structural hasher. One per worker.
class CanonicalHasher {
 public:
  CanonHash hash(const expr::ExprRef& e);

  std::size_t memoSize() const { return memo_.size(); }

 private:
  // Keyed on interned node pointers; valid for the lifetime of the
  // ExprBuilder that produced them (builders retain every node).
  std::unordered_map<const expr::Expr*, CanonHash> memo_;
  std::vector<const expr::Expr*> stack_;
};

/// The shared verdict store.
class QueryCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t entries = 0;

    double hitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  explicit QueryCache(unsigned shards = 16);

  /// Mirrors cache traffic into the registry counters "qcache.hits",
  /// "qcache.misses" and "qcache.insertions" as it happens, so live
  /// consumers (heartbeat, --metrics-out) see the same aggregation the
  /// final EngineReport carries. These counters are timing-dependent:
  /// which worker wins the race to solve a query decides hit vs. miss.
  void attachMetrics(obs::MetricsRegistry& registry);

  /// Cached verdict for `key`: true = Sat, false = Unsat. Counts a hit
  /// or miss.
  std::optional<bool> lookup(const CanonHash& key);

  /// Stores a definitive verdict. Last writer wins (identical keys carry
  /// identical verdicts, so races are benign).
  void insert(const CanonHash& key, bool sat);

  Stats stats() const;

  /// Enumerates every cached (key, verdict) pair, one shard lock at a
  /// time (concurrent inserts may or may not be seen — fine for the
  /// persistent cache store, whose entries are standalone semantic
  /// facts). Do not call lookup/insert from `fn`: it would deadlock on
  /// the held shard.
  void forEach(const std::function<void(const CanonHash&, bool)>& fn);

 private:
  struct KeyHash {
    std::size_t operator()(const CanonHash& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<CanonHash, bool, KeyHash> map;
  };

  Shard& shardFor(const CanonHash& key) {
    return shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_insertions_ = nullptr;
};

}  // namespace rvsym::solver
