#include "solver/options.hpp"

namespace rvsym::solver {

bool parseSolverOpt(std::string_view spec, SolverOptions* out,
                    std::string* error) {
  if (spec == "all" || spec.empty()) {
    *out = SolverOptions::all();
    return true;
  }
  if (spec == "none") {
    *out = SolverOptions::none();
    return true;
  }
  SolverOptions o = SolverOptions::none();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view tok =
        spec.substr(pos, comma == std::string_view::npos ? comma : comma - pos);
    if (tok == "cex") {
      o.cex_cache = true;
    } else if (tok == "cores") {
      o.unsat_cores = true;
    } else if (tok == "rewrite") {
      o.rewrite = true;
    } else if (tok == "slice") {
      o.slicing = true;
    } else if (!tok.empty()) {
      if (error)
        *error = "unknown solver-opt layer '" + std::string(tok) +
                 "' (use all, none, or a comma list of cex,cores,rewrite,slice)";
      return false;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  *out = o;
  return true;
}

std::string solverOptName(const SolverOptions& o) {
  if (o == SolverOptions::all()) return "all";
  if (!o.any()) return "none";
  std::string s;
  const auto add = [&s](const char* name) {
    if (!s.empty()) s += ',';
    s += name;
  };
  if (o.cex_cache) add("cex");
  if (o.unsat_cores) add("cores");
  if (o.rewrite) add("rewrite");
  if (o.slicing) add("slice");
  return s;
}

}  // namespace rvsym::solver
