// SolverTelemetry — per-query instrumentation for the bit-vector solver.
//
// One SolverTelemetry instance is shared by every PathSolver of a run
// (like the QueryCache). Each feasibility check reports a Query record:
// canonical structural hash, expr node count, SAT variable/clause
// counts, split bit-blast vs SAT microseconds, verdict, and cache
// disposition. Records feed the obs registry (histograms
// solver.bitblast_us / solver.sat_us, counters solver.queries /
// solver.slow_queries), and queries whose total latency crosses
// `Options::slow_query_us` are dumped — serialized expression text plus
// a companion DIMACS CNF — into the slow-query corpus directory for
// offline replay and shrinking by rvsym-profile (see corpus.hpp).
//
// Thread safety: record()/dump() are safe for concurrent use by worker
// threads; counters are atomic and the corpus writer (dedup set + file
// I/O) is mutex-protected. Dump filenames derive from the canonical
// query hash, so parallel runs of the same workload produce the same
// corpus file set regardless of worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "expr/expr.hpp"
#include "obs/metrics.hpp"
#include "solver/querycache.hpp"

namespace rvsym::obs {
class SpanCollector;  // obs/trace_events.hpp
}

namespace rvsym::solver {

enum class CheckResult;  // solver.hpp

class SolverTelemetry {
 public:
  struct Options {
    /// Dump queries whose bitblast+SAT time reaches this many
    /// microseconds. 0 disables corpus dumping (registry metrics and
    /// the slow counter still need a nonzero threshold to trigger).
    std::uint64_t slow_query_us = 0;
    /// Corpus directory (created on first dump). Empty disables dumping
    /// while keeping the slow-query counter.
    std::string corpus_dir;
  };

  /// How a check was answered (DESIGN.md §10): Hit = exact-hash
  /// QueryCache; CexModel / CexCore = counterexample cache (stored model
  /// re-evaluated / UNSAT-core subsumption); Rewrite = assumption
  /// collapsed to a constant pre-bitblast; Sliced = solved, but only the
  /// constraint slice sharing variables with the assumption was passed
  /// to the SAT solver; Miss = full solve; Uncached = solved with no
  /// cache attached.
  enum class Disposition { Uncached, Hit, Miss, CexModel, CexCore, Rewrite,
                           Sliced };

  struct Query {
    CanonHash hash;
    std::uint64_t expr_nodes = 0;   ///< unique nodes in the assumption DAG
    std::uint64_t sat_vars = 0;
    std::uint64_t sat_clauses = 0;  ///< live problem clauses
    std::uint64_t bitblast_us = 0;
    std::uint64_t sat_us = 0;
    CheckResult verdict;
    Disposition disposition = Disposition::Uncached;
  };

  SolverTelemetry() = default;
  explicit SolverTelemetry(Options opts) : opts_(std::move(opts)) {}

  /// Mirrors telemetry into registry instruments: counters
  /// "solver.queries" / "solver.slow_queries", histograms
  /// "solver.bitblast_us" / "solver.sat_us" / "solver.query_nodes".
  void attachMetrics(obs::MetricsRegistry& registry);

  /// When set, every record() additionally emits one Chrome-trace span
  /// on the recording thread's track, named after the disposition, with
  /// disposition / verdict / node + SAT size counts as span args.
  /// Cache-answered queries appear as zero-duration spans, which is the
  /// point: Perfetto shows where solves were avoided, not just spent.
  void attachSpans(obs::SpanCollector* spans) { spans_ = spans; }
  obs::SpanCollector* spans() const { return spans_; }

  /// Records one check. Returns true iff the caller should dump() the
  /// query: it crossed the slow threshold, has a definitive verdict, a
  /// corpus dir is configured, and its hash was not dumped before.
  bool record(const Query& q);

  /// Writes q_<hash>.query and q_<hash>.cnf into the corpus dir.
  /// Returns false on I/O or serialization failure.
  bool dump(const Query& q, const std::vector<expr::ExprRef>& constraints,
            const expr::ExprRef& assumption, const std::string& dimacs);

  /// In-flight query capture (crash forensics, DESIGN.md §12): when
  /// enabled, PathSolver serializes each query it is about to hand to
  /// the SAT solver — rvsym-query-v1, the same format as the slow-query
  /// corpus — into the calling thread's flight-recorder slot, so a
  /// crash bundle contains the exact query that was being solved.
  /// Compiled out (and a no-op) under RVSYM_OBS_NO_TRACING.
  void enableInFlightCapture(bool on) {
    capture_inflight_.store(on, std::memory_order_relaxed);
  }
  bool inFlightCapture() const {
    return capture_inflight_.load(std::memory_order_relaxed);
  }
  /// Publishes the query the caller is about to solve (null assumption =
  /// whole-path feasibility check).
  void captureInFlight(const std::vector<expr::ExprRef>& constraints,
                       const expr::ExprRef& assumption, const CanonHash& key);
  /// Marks the solve finished (nothing in flight).
  void clearInFlight();

  const Options& options() const { return opts_; }
  std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t slowQueries() const {
    return slow_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumpedQueries() const {
    return dumped_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::atomic<bool> capture_inflight_{false};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> slow_{0};
  std::atomic<std::uint64_t> dumped_{0};

  std::mutex mu_;  // corpus dedup set + directory creation + file writes
  std::unordered_set<std::uint64_t> dumped_keys_;
  bool dir_ready_ = false;

  obs::SpanCollector* spans_ = nullptr;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_slow_ = nullptr;
  obs::Histogram* m_bitblast_us_ = nullptr;
  obs::Histogram* m_sat_us_ = nullptr;
  obs::Histogram* m_nodes_ = nullptr;
};

/// Short stable name for a disposition ("uncached", "exact", "solve",
/// "cex-model", "cex-core", "rewrite", "slice").
const char* dispositionName(SolverTelemetry::Disposition d);

}  // namespace rvsym::solver
