#include "solver/querycache.hpp"

#include <string>

namespace rvsym::solver {

namespace {

// splitmix64 finalizer — strong mixing so set-sums stay collision-free.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hashString(const std::string& s, std::uint64_t seed) {
  // FNV-1a seeded per lane.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

CanonHash leafHash(const expr::Expr& e) {
  const std::uint64_t kind = static_cast<std::uint64_t>(e.kind());
  const std::uint64_t width = e.width();
  CanonHash h;
  if (e.isVariable()) {
    // Variables hash by name: ids are a per-builder accident.
    h.lo = mix64(hashString(e.name(), 0x11) ^ mix64(kind ^ (width << 8)));
    h.hi = mix64(hashString(e.name(), 0x22) + mix64(width ^ (kind << 8)));
  } else {
    // Constant bits, or the Extract low-bit index; 0 for other kinds.
    const std::uint64_t value = e.rawValue();
    h.lo = mix64(mix64(kind ^ (width << 8)) ^ mix64(value));
    h.hi = mix64(mix64(width ^ (kind << 8)) + mix64(value ^ 0x5bd1e995ULL));
  }
  return h;
}

}  // namespace

CanonHash canonQueryKey(const CanonHash& constraint_set,
                        const CanonHash& assumption) {
  CanonHash key;
  key.lo = mix64(mix64(constraint_set.lo) ^ mix64(assumption.lo ^ 0xa5a5a5a5ULL));
  key.hi = mix64(mix64(constraint_set.hi) + mix64(assumption.hi ^ 0x3c3c3c3cULL));
  return key;
}

CanonHash CanonicalHasher::hash(const expr::ExprRef& e) {
  // Iterative post-order walk: deep ITE chains (symbolic memories) must
  // not overflow the native stack.
  stack_.clear();
  stack_.push_back(e.get());
  while (!stack_.empty()) {
    const expr::Expr* node = stack_.back();
    if (memo_.count(node) != 0) {
      stack_.pop_back();
      continue;
    }
    bool ready = true;
    for (int i = 0; i < node->numOperands(); ++i) {
      const expr::Expr* op = node->operand(i).get();
      if (memo_.count(op) == 0) {
        if (ready) ready = false;
        stack_.push_back(op);
      }
    }
    if (!ready) continue;
    stack_.pop_back();

    CanonHash h = leafHash(*node);
    for (int i = 0; i < node->numOperands(); ++i) {
      const CanonHash& oh = memo_.at(node->operand(i).get());
      // Order-sensitive fold (operand position matters).
      h.lo = mix64(h.lo ^ oh.lo);
      h.hi = mix64(h.hi + oh.hi + 0x9e3779b97f4a7c15ULL);
    }
    memo_.emplace(node, h);
  }
  return memo_.at(e.get());
}

QueryCache::QueryCache(unsigned shards)
    : shards_(shards == 0 ? 1 : shards) {}

void QueryCache::attachMetrics(obs::MetricsRegistry& registry) {
  metric_hits_ = &registry.counter("qcache.hits");
  metric_misses_ = &registry.counter("qcache.misses");
  metric_insertions_ = &registry.counter("qcache.insertions");
}

std::optional<bool> QueryCache::lookup(const CanonHash& key) {
  Shard& shard = shardFor(key);
  std::optional<bool> result;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) result = it->second;
  }
  if (result) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_) metric_hits_->add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metric_misses_) metric_misses_->add();
  }
  return result;
}

void QueryCache::insert(const CanonHash& key, bool sat) {
  Shard& shard = shardFor(key);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.map[key] = sat;
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (metric_insertions_) metric_insertions_->add();
}

QueryCache::Stats QueryCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(const_cast<Shard&>(shard).mu);
    s.entries += shard.map.size();
  }
  return s;
}

void QueryCache::forEach(
    const std::function<void(const CanonHash&, bool)>& fn) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const auto& [key, sat] : shard.map) fn(key, sat);
  }
}

}  // namespace rvsym::solver
