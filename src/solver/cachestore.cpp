#include "solver/cachestore.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string_view>
#include <vector>

namespace rvsym::solver {

namespace {

namespace fs = std::filesystem;

constexpr const char* kHeader = "rvsym-cachestore-v1";

CanonHash coreKey(const std::vector<CanonHash>& elems) {
  CanonHash key;
  for (const CanonHash& e : elems) key = canonSetAdd(key, e);
  return key;
}

/// Pulls one whitespace-delimited token off `s`. Empty token = end.
std::string_view nextToken(std::string_view& s) {
  std::size_t i = 0;
  while (i < s.size() && s[i] == ' ') ++i;
  std::size_t j = i;
  while (j < s.size() && s[j] != ' ') ++j;
  std::string_view tok = s.substr(i, j - i);
  s.remove_prefix(j);
  return tok;
}

bool parseHex(std::string_view tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = v;
  return true;
}

/// Parses "lo:hi" / "lo:hi:val" triples (all hex).
bool parseHashTok(std::string_view tok, CanonHash& h) {
  const std::size_t colon = tok.find(':');
  if (colon == std::string_view::npos) return false;
  return parseHex(tok.substr(0, colon), h.lo) &&
         parseHex(tok.substr(colon + 1), h.hi);
}

bool parseModelTok(std::string_view tok, CanonHash& var, std::uint64_t& val) {
  const std::size_t c1 = tok.find(':');
  if (c1 == std::string_view::npos) return false;
  const std::size_t c2 = tok.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return false;
  return parseHex(tok.substr(0, c1), var.lo) &&
         parseHex(tok.substr(c1 + 1, c2 - c1 - 1), var.hi) &&
         parseHex(tok.substr(c2 + 1), val);
}

void appendHex(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIx64, v);
  out += buf;
}

std::string formatVerdict(const CanonHash& key, bool sat) {
  std::string line = "v ";
  appendHex(line, key.lo);
  line += ' ';
  appendHex(line, key.hi);
  line += sat ? " s" : " u";
  return line;
}

std::string formatModel(const CanonHash& set, const CexCache::Model& m) {
  std::string line = "m ";
  appendHex(line, set.lo);
  line += ' ';
  appendHex(line, set.hi);
  line += ' ';
  line += std::to_string(m.values.size());
  for (const auto& [var, val] : m.values) {
    line += ' ';
    appendHex(line, var.lo);
    line += ':';
    appendHex(line, var.hi);
    line += ':';
    appendHex(line, val);
  }
  return line;
}

std::string formatCore(const std::vector<CanonHash>& elems) {
  std::string line = "c ";
  line += std::to_string(elems.size());
  for (const CanonHash& e : elems) {
    line += ' ';
    appendHex(line, e.lo);
    line += ':';
    appendHex(line, e.hi);
  }
  return line;
}

/// One parsed entry, dispatched to the caller.
struct EntrySink {
  std::function<void(const CanonHash&, bool)> verdict;
  std::function<void(const CanonHash&, CexCache::Model&&)> model;
  std::function<void(std::vector<CanonHash>&&)> core;
};

bool parseLine(std::string_view line, const EntrySink& sink) {
  std::string_view rest = line;
  const std::string_view kind = nextToken(rest);
  if (kind == "v") {
    CanonHash key;
    if (!parseHex(nextToken(rest), key.lo)) return false;
    if (!parseHex(nextToken(rest), key.hi)) return false;
    const std::string_view v = nextToken(rest);
    if (v != "s" && v != "u") return false;
    sink.verdict(key, v == "s");
    return true;
  }
  if (kind == "m") {
    CanonHash set;
    std::uint64_t n = 0;
    if (!parseHex(nextToken(rest), set.lo)) return false;
    if (!parseHex(nextToken(rest), set.hi)) return false;
    const std::string_view count = nextToken(rest);
    // The count is decimal; reuse the hex scanner only for hashes.
    for (const char c : count)
      if (c < '0' || c > '9') return false;
    if (count.empty()) return false;
    for (const char c : count) n = n * 10 + static_cast<std::uint64_t>(c - '0');
    CexCache::Model m;
    m.values.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CanonHash var;
      std::uint64_t val = 0;
      if (!parseModelTok(nextToken(rest), var, val)) return false;
      m.values.emplace_back(var, val);
    }
    if (!nextToken(rest).empty()) return false;
    sink.model(set, std::move(m));
    return true;
  }
  if (kind == "c") {
    std::uint64_t n = 0;
    const std::string_view count = nextToken(rest);
    if (count.empty()) return false;
    for (const char c : count) {
      if (c < '0' || c > '9') return false;
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    std::vector<CanonHash> elems;
    elems.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      CanonHash e;
      if (!parseHashTok(nextToken(rest), e)) return false;
      elems.push_back(e);
    }
    if (!nextToken(rest).empty()) return false;
    sink.core(std::move(elems));
    return true;
  }
  return false;
}

/// Reads one store file. A malformed *final* line is a torn append and
/// silently skipped; malformed interior lines are counted.
void readStoreFile(const fs::path& path, const EntrySink& sink,
                   CacheStore::LoadStats& stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ++stats.files;
  std::size_t start = 0;
  bool first = true;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    const bool tail = nl == std::string::npos;
    if (tail) nl = text.size();
    const std::string_view line(text.data() + start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line != kHeader) {
        // Foreign or pre-header-torn file: count and stop reading it.
        ++stats.bad_lines;
        return;
      }
      continue;
    }
    if (!parseLine(line, sink) && !tail) ++stats.bad_lines;
  }
}

std::vector<fs::path> storeFiles(const std::string& dir) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    if (!ent.is_regular_file()) continue;
    const fs::path& p = ent.path();
    if (p.extension() == ".rvqc") files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

CacheStore::CacheStore(std::string dir, std::string tag)
    : dir_(std::move(dir)), tag_(std::move(tag)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

std::string CacheStore::segmentPath() const {
  return dir_ + "/seg-" + tag_ + ".rvqc";
}

CacheStore::LoadStats CacheStore::load(QueryCache* qcache,
                                       CexCache* cexcache) {
  LoadStats stats;
  EntrySink sink;
  sink.verdict = [&](const CanonHash& key, bool sat) {
    if (seen_verdicts_.insert(key).second) {
      ++stats.verdicts;
      if (qcache) qcache->insert(key, sat);
    }
  };
  sink.model = [&](const CanonHash& set, CexCache::Model&& m) {
    if (seen_models_.insert(set).second) {
      ++stats.models;
      if (cexcache) cexcache->insertModel(set, std::move(m));
    }
  };
  sink.core = [&](std::vector<CanonHash>&& elems) {
    if (seen_cores_.insert(coreKey(elems)).second) {
      ++stats.cores;
      if (cexcache) cexcache->insertCore(std::move(elems));
    }
  };
  for (const fs::path& p : storeFiles(dir_)) readStoreFile(p, sink, stats);
  return stats;
}

CacheStore::AbsorbStats CacheStore::absorb(QueryCache* qcache,
                                           CexCache* cexcache) {
  // Gather the new facts first so the file write is one short burst.
  std::string out;
  AbsorbStats stats;
  if (qcache) {
    qcache->forEach([&](const CanonHash& key, bool sat) {
      if (!seen_verdicts_.insert(key).second) return;
      ++stats.verdicts;
      out += formatVerdict(key, sat);
      out += '\n';
    });
  }
  if (cexcache) {
    cexcache->forEachModel([&](const CanonHash& set,
                               const CexCache::Model& m) {
      if (!seen_models_.insert(set).second) return;
      ++stats.models;
      out += formatModel(set, m);
      out += '\n';
    });
    cexcache->forEachCore([&](const std::vector<CanonHash>& elems) {
      if (!seen_cores_.insert(coreKey(elems)).second) return;
      ++stats.cores;
      out += formatCore(elems);
      out += '\n';
    });
  }
  if (out.empty()) return stats;

  const std::string path = segmentPath();
  const bool fresh = !fs::exists(path);
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return stats;
  if (fresh) std::fprintf(f, "%s\n", kHeader);
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return stats;
}

std::optional<std::uint64_t> CacheStore::compact(const std::string& dir,
                                                 std::string* error) {
  // Deduplicate through a scratch handle (its seen-sets), rendering
  // every surviving entry once.
  CacheStore scratch(dir, "compact-scratch");
  LoadStats stats;
  std::string out;
  EntrySink sink;
  sink.verdict = [&](const CanonHash& key, bool sat) {
    if (!scratch.seen_verdicts_.insert(key).second) return;
    out += formatVerdict(key, sat);
    out += '\n';
  };
  sink.model = [&](const CanonHash& set, CexCache::Model&& m) {
    if (!scratch.seen_models_.insert(set).second) return;
    out += formatModel(set, m);
    out += '\n';
  };
  sink.core = [&](std::vector<CanonHash>&& elems) {
    if (!scratch.seen_cores_.insert(coreKey(elems)).second) return;
    out += formatCore(elems);
    out += '\n';
  };
  const std::vector<fs::path> files = storeFiles(dir);
  // main.rvqc first so its (already deduplicated) entries win.
  for (const fs::path& p : files)
    if (p.filename() == "main.rvqc") readStoreFile(p, sink, stats);
  for (const fs::path& p : files)
    if (p.filename() != "main.rvqc") readStoreFile(p, sink, stats);

  const std::string tmp = dir + "/main.rvqc.tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    if (error) *error = "cannot write " + tmp;
    return std::nullopt;
  }
  std::fprintf(f, "%s\n", kHeader);
  std::fwrite(out.data(), 1, out.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!flushed) {
    if (error) *error = "short write to " + tmp;
    return std::nullopt;
  }
  std::error_code ec;
  fs::rename(tmp, dir + "/main.rvqc", ec);
  if (ec) {
    if (error) *error = "rename failed: " + ec.message();
    return std::nullopt;
  }
  // Rename-before-unlink: from here every entry lives in the new main,
  // so dropping the segments cannot lose facts.
  for (const fs::path& p : files)
    if (p.filename() != "main.rvqc") fs::remove(p, ec);
  return scratch.seen_verdicts_.size() + scratch.seen_models_.size() +
         scratch.seen_cores_.size();
}

}  // namespace rvsym::solver
