// Persistent on-disk query-cache store (rvsym-cachestore-v1) — the
// disk half of the PR 6 acceleration caches, so solver facts survive
// process exit and warm every later job, restart and tenant.
//
// A store is a directory:
//
//   <dir>/main.rvqc        the compacted baseline (may be absent)
//   <dir>/seg-<tag>.rvqc   one append-only segment per live writer
//
// Every file is line-oriented text, self-describing and torn-tail
// tolerant (a writer killed mid-append loses at most its last line):
//
//   rvsym-cachestore-v1
//   v <lo> <hi> s|u                       QueryCache verdict (hex key)
//   m <setlo> <sethi> <n> <lo>:<hi>:<val>...   CexCache model
//   c <n> <lo>:<hi>...                    CexCache UNSAT core
//
// Keys are the canonical builder-independent hashes of querycache.hpp,
// which is what makes a store shareable: the same constraint built in
// any worker's ExprBuilder, in any process, on any day, produces the
// same key. Every entry is a standalone semantic fact about a query,
// so duplicate entries across files are benign (compaction drops them)
// and load order is irrelevant.
//
// Concurrency contract (the daemon enforces it):
//  * one writer per segment file — tags embed the worker identity;
//  * absorb() is open-append-close, so a segment is complete on disk
//    the moment the call returns;
//  * compact() may only run when no segment writer is active. It
//    rewrites main.rvqc via tmp+rename *before* unlinking segments, so
//    a crash mid-compaction never loses entries — at worst it leaves
//    both the new main and an already-merged segment, which is just
//    duplication.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>

#include "solver/cexcache.hpp"
#include "solver/querycache.hpp"

namespace rvsym::solver {

/// One process's handle on a store directory: loads everything present,
/// then appends the facts its caches learned to a private segment.
class CacheStore {
 public:
  struct LoadStats {
    std::uint64_t files = 0;
    std::uint64_t verdicts = 0;
    std::uint64_t models = 0;
    std::uint64_t cores = 0;
    std::uint64_t bad_lines = 0;  ///< malformed non-tail lines skipped
  };
  struct AbsorbStats {
    std::uint64_t verdicts = 0;
    std::uint64_t models = 0;
    std::uint64_t cores = 0;
  };

  /// `tag` names this writer's segment (seg-<tag>.rvqc); it must be
  /// unique among live writers. Creates `dir` on first use.
  CacheStore(std::string dir, std::string tag);

  /// Reads every *.rvqc file in the directory into the caches and
  /// records the keys seen, so absorb() appends only new facts.
  /// Null caches skip that entry kind (still recorded as seen).
  LoadStats load(QueryCache* qcache, CexCache* cexcache);

  /// Appends cache entries not yet known to this handle to the segment
  /// file. Open-append-close per call; safe to call repeatedly.
  AbsorbStats absorb(QueryCache* qcache, CexCache* cexcache);

  const std::string& dir() const { return dir_; }
  std::string segmentPath() const;

  /// Merges main.rvqc plus every segment into a fresh deduplicated
  /// main.rvqc (tmp+rename), then unlinks the segments. Caller must
  /// guarantee no writer is mid-absorb. Returns the entry count of the
  /// new main, nullopt on I/O failure.
  static std::optional<std::uint64_t> compact(const std::string& dir,
                                              std::string* error = nullptr);

 private:
  struct KeyHash {
    std::size_t operator()(const CanonHash& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  using KeySet = std::unordered_set<CanonHash, KeyHash>;

  std::string dir_;
  std::string tag_;
  KeySet seen_verdicts_;
  KeySet seen_models_;  ///< by constraint-set hash
  KeySet seen_cores_;   ///< by canonSetAdd over the core's elements
};

}  // namespace rvsym::solver
