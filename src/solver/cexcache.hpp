// Counterexample / subsumption cache (KLEE's counterexample cache
// adapted to the replay-based engine; DESIGN.md §10).
//
// Two stores, both keyed builder-independently via CanonHash so entries
// transfer across paths and across the parallel engine's workers:
//
//  * Model store: satisfying assignments keyed by the canonical
//    *constraint-set* hash. A stored model witnesses "this exact set is
//    satisfiable"; a later query (set, assumption) over the same set is
//    answered Sat by merely *evaluating* the assumption under the model
//    (expr::evaluate) — a superset query's extra conjunct is checked the
//    same way, no solving. Variables are keyed by their canonical
//    (name-based) hash; variables absent from a model are free in the
//    stored set and read as 0, which is exactly the extension
//    expr::evaluate applies, so evaluation under the translated model is
//    faithful.
//
//  * Core store: minimized UNSAT cores as sets of canonical conjunct
//    hashes (the assumption, when it contributes, is just another
//    element). A query whose element set is a *superset* of any stored
//    core is UNSAT for free: its conjunction implies the core's
//    conjunction. Cores come from the CDCL final conflict under
//    selector assumptions (SatSolver::conflict()), so sibling branches
//    that share the infeasibility's actual cause subsume even when their
//    constraint sets diverge elsewhere.
//
// Verdicts answered from either store are semantic facts about the
// query, identical to what a solver run would return — which is why the
// cache can be shared across workers without affecting `--jobs`
// byte-parity. Thread safety: models are sharded behind per-shard
// mutexes; the core store uses one mutex (core insertion is rare
// relative to lookups, and lookups must scan an inverted index anyway).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "solver/querycache.hpp"

namespace rvsym::solver {

class CexCache {
 public:
  /// A satisfying assignment, builder-independent: (canonical variable
  /// hash, value) pairs sorted by hash for binary search.
  struct Model {
    std::vector<std::pair<CanonHash, std::uint64_t>> values;

    std::optional<std::uint64_t> get(const CanonHash& var) const;
    void sort();
  };

  struct Stats {
    std::uint64_t models = 0;
    std::uint64_t cores = 0;
    std::uint64_t model_hits = 0;
    std::uint64_t model_lookups = 0;
    std::uint64_t core_hits = 0;
    std::uint64_t core_lookups = 0;
  };

  explicit CexCache(unsigned shards = 16);

  /// Mirrors traffic into "cexcache.model_hits" / "cexcache.core_hits"
  /// registry counters (timing-dependent under --jobs, like qcache.*).
  void attachMetrics(obs::MetricsRegistry& registry);

  /// Stores a model satisfying the constraint set hashed as `set_hash`.
  /// `model.values` need not be sorted. First writer wins: identical
  /// keys may carry *different* (equally valid) witnesses, and keeping
  /// the first avoids churn.
  void insertModel(const CanonHash& set_hash, Model model);

  /// The stored witness for exactly this constraint set, if any.
  std::optional<Model> lookupModel(const CanonHash& set_hash);

  /// Stores an UNSAT core as a set of canonical element hashes.
  /// Duplicate cores and cores above the size cap are dropped.
  void insertCore(std::vector<CanonHash> elems);

  /// True iff some stored core is a subset of `query_elems` (which then
  /// proves the query UNSAT). `query_elems` may contain duplicates.
  bool subsumesUnsat(const std::vector<CanonHash>& query_elems);

  Stats stats() const;

  /// Enumerates stored models / cores for the persistent cache store,
  /// one lock at a time (see QueryCache::forEach for the snapshot and
  /// reentrancy caveats).
  void forEachModel(
      const std::function<void(const CanonHash&, const Model&)>& fn);
  void forEachCore(
      const std::function<void(const std::vector<CanonHash>&)>& fn);

 private:
  struct KeyHash {
    std::size_t operator()(const CanonHash& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<CanonHash, Model, KeyHash> map;
  };

  // Caps keep memory bounded on adversarial workloads; hit-rate loss
  // from dropping entries is benign (a miss just means solving).
  static constexpr std::size_t kMaxModelsPerShard = 1u << 14;
  static constexpr std::size_t kMaxCores = 1u << 13;
  static constexpr std::size_t kMaxCoreElems = 64;

  Shard& shardFor(const CanonHash& key) {
    return shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }

  std::vector<Shard> shards_;

  mutable std::mutex cores_mu_;
  std::vector<std::vector<CanonHash>> cores_;
  // Inverted index: element hash -> indices of cores containing it.
  std::unordered_map<CanonHash, std::vector<std::uint32_t>, KeyHash> by_elem_;
  // Set-hash of each stored core, for dedup.
  std::unordered_map<CanonHash, char, KeyHash> core_keys_;

  std::atomic<std::uint64_t> models_{0};
  std::atomic<std::uint64_t> model_hits_{0};
  std::atomic<std::uint64_t> model_lookups_{0};
  std::atomic<std::uint64_t> core_hits_{0};
  std::atomic<std::uint64_t> core_lookups_{0};
  obs::Counter* metric_model_hits_ = nullptr;
  obs::Counter* metric_core_hits_ = nullptr;
};

}  // namespace rvsym::solver
