// Slow-query corpus — the on-disk exchange format for solver queries.
//
// When solver telemetry (telemetry.hpp) sees a check cross the slow-query
// latency threshold it dumps the query here: a self-contained text file
// (rvsym-query-v1) carrying the serialized constraint/assumption DAGs
// (expr/serialize.hpp) plus the verdict and timings observed online, and
// a companion DIMACS CNF of the same query for external SAT solvers.
// rvsym-profile loads these files offline to re-check the verdict, time
// the solve on the current solver, and shrink the query with ddmin over
// the constraint conjuncts.
//
// File layout (q_<canonhash>.query):
//
//   rvsym-query-v1
//   verdict unsat
//   sat_us 12345
//   bitblast_us 210
//   nodes 87
//   constraints 3
//   assume 1
//   <blank line>
//   n0 var instr 32
//   ...
//   root n14        <- first `constraints` roots are conjuncts,
//   root n17           the trailing root (iff `assume 1`) the assumption
//
// The format deliberately avoids JSON: parsing it needs nothing above
// rvsym_solver, so the corpus reader/replayer stays inside this library
// with no dependency on the obs analysis layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/builder.hpp"
#include "expr/expr.hpp"
#include "solver/solver.hpp"

namespace rvsym::solver {

struct CorpusQuery {
  std::vector<expr::ExprRef> constraints;
  expr::ExprRef assumption;  ///< null = path-feasibility (checkPath) query
  CheckResult verdict = CheckResult::Unknown;
  std::uint64_t sat_us = 0;       ///< SAT time observed when dumped
  std::uint64_t bitblast_us = 0;  ///< bit-blast time observed when dumped
  std::uint64_t nodes = 0;        ///< unique expr nodes across all roots
};

const char* verdictName(CheckResult v);
std::optional<CheckResult> verdictByName(std::string_view s);

/// Unique node count of the union DAG rooted at `roots`.
std::uint64_t countUniqueNodes(const std::vector<expr::ExprRef>& roots);

/// Renders `q` in rvsym-query-v1 format. Empty string on failure
/// (unserializable variable name).
std::string formatQuery(const CorpusQuery& q);

/// Size-bounded rvsym-query-v1 render for the crash-forensics in-flight
/// slot, which truncates to a fixed capacity anyway: serialization work
/// stops once the body reaches `max_body_bytes` instead of walking the
/// whole DAG. The header's `nodes` field counts the nodes actually
/// serialized; a truncated document ends with a "; truncated" line and
/// carries no "root" trailer. Pre-solve there is no verdict or timing,
/// so those header fields render as unknown/zero. Empty string on
/// failure (unserializable variable name).
std::string formatQueryBounded(const std::vector<expr::ExprRef>& constraints,
                               const expr::ExprRef& assumption,
                               std::size_t max_body_bytes);

/// Parses an rvsym-query-v1 document into `eb`.
std::optional<CorpusQuery> parseQuery(expr::ExprBuilder& eb,
                                      std::string_view text,
                                      std::string* error = nullptr);

/// Reads and parses one corpus file.
std::optional<CorpusQuery> loadQueryFile(expr::ExprBuilder& eb,
                                         const std::string& path,
                                         std::string* error = nullptr);

/// Re-solves the query from scratch on a fresh PathSolver. With
/// `solve_us`, reports the SAT time of the replay.
CheckResult replayQuery(expr::ExprBuilder& eb, const CorpusQuery& q,
                        std::uint64_t* solve_us = nullptr);

/// Replay configuration for the acceleration-aware overload: which
/// pipeline layers run (DESIGN.md §10) and, optionally, caches shared
/// across the queries of one corpus sweep — the offline stand-in for a
/// live run's cross-path reuse.
struct ReplayOptions {
  SolverOptions solver_opt = SolverOptions::none();
  QueryCache* query_cache = nullptr;  ///< may be null
  CexCache* cex_cache = nullptr;      ///< may be null
  /// Canonical hasher shared across queries (single-threaded replay);
  /// null = the solver's private hasher.
  CanonicalHasher* hasher = nullptr;
};

struct ReplayOutcome {
  CheckResult verdict = CheckResult::Unknown;
  std::uint64_t solve_us = 0;  ///< SAT time of this replay
  /// Which layer answered: "const" (constraint folding), "exact",
  /// "cex-model", "cex-core", "rewrite", "slice", or "solve" (a full
  /// SAT solve). Derived from the per-solver QueryStats — a fresh
  /// solver runs exactly one check, so the attribution is unambiguous.
  const char* via = "solve";
};

/// Acceleration-aware replay: like replayQuery but with the layered
/// pipeline configured by `opts`, reporting where the verdict came
/// from. Verdicts are identical to the plain replay for any
/// configuration (the layers are sound).
ReplayOutcome replayQueryOpt(expr::ExprBuilder& eb, const CorpusQuery& q,
                             const ReplayOptions& opts);

/// ddmin over the constraint conjuncts: returns a 1-minimal subset of
/// q.constraints whose replay verdict still equals q.verdict. With
/// `replays`, reports how many replay solves the search spent.
std::vector<expr::ExprRef> ddminConstraints(expr::ExprBuilder& eb,
                                            const CorpusQuery& q,
                                            std::uint64_t* replays = nullptr);

}  // namespace rvsym::solver
