// PathSolver — the incremental bit-vector query interface used by the
// symbolic execution engine.
//
// One PathSolver accompanies one execution path: constraints are added
// permanently as the path progresses (they only ever grow), while branch
// feasibility checks are solved under a single assumption literal, which
// lets the underlying CDCL solver reuse everything it has learned on this
// path so far.
//
// With an attached cross-path QueryCache (querycache.hpp), feasibility
// checks first consult the shared verdict store; decoder branches recur
// with identical constraint prefixes on almost every path, so most of
// the solver traffic collapses into cache hits.
//
// model() deliberately solves on a *fresh* solver built from the
// constraint set alone: the returned assignment is a pure function of
// (constraint set, assumption), independent of which feasibility checks
// ran — or were answered by the cache — beforehand. Concretizations and
// test vectors therefore stay byte-identical across worker counts and
// cache states.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "expr/expr.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "solver/bitblast.hpp"
#include "solver/querycache.hpp"
#include "solver/sat.hpp"

namespace rvsym::solver {

class SolverTelemetry;  // telemetry.hpp

enum class CheckResult { Sat, Unsat, Unknown };

struct QueryStats {
  std::uint64_t checks = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;
  std::uint64_t constant_fastpath = 0;
  std::uint64_t model_queries = 0;
  std::uint64_t cache_hits = 0;    ///< checks answered by the shared cache
  std::uint64_t cache_misses = 0;  ///< checks that had to run the SAT solver
  /// Wall time spent inside SAT solves of check()/checkPath(), in
  /// microseconds — the same population the solver.check_us histogram
  /// records, so per-path totals sum to the registry's total exactly.
  /// Zero unless timing is enabled (enableTiming / attachMetrics).
  std::uint64_t solve_us = 0;
};

class PathSolver {
 public:
  explicit PathSolver(expr::ExprBuilder& eb);

  /// Attaches the shared cross-path verdict cache. `hasher` must be
  /// owned by the same thread as this solver (it is not thread-safe)
  /// and must outlive it; `cache` may be shared across threads.
  void attachCache(QueryCache* cache, CanonicalHasher* hasher) {
    cache_ = cache;
    hasher_ = hasher;
  }

  /// Attaches a latency histogram that every SAT solve performed by
  /// check()/checkPath() records into (microseconds). Cache hits and
  /// constant fast paths never reach the solver and are not recorded.
  /// Implies enableTiming(true).
  void attachMetrics(obs::Histogram* check_latency) {
    check_latency_ = check_latency;
    timing_ = timing_ || check_latency != nullptr;
  }

  /// Accumulates stats().solve_us across SAT solves (one clock pair per
  /// solve). Off by default so untimed hot paths never read the clock;
  /// the engines switch it on when a trace sink wants per-path
  /// solver-time attribution.
  void enableTiming(bool on) { timing_ = timing_ || on; }

  /// Attaches shared per-query telemetry (telemetry.hpp): every solved
  /// check reports hash, node/var/clause counts, split bitblast/SAT
  /// timings, verdict and cache disposition, and slow queries are dumped
  /// to the corpus. Must be attached before the first addConstraint()
  /// (the running canonical set hash starts then). Implies
  /// enableTiming(true).
  void attachTelemetry(SolverTelemetry* telemetry) {
    telemetry_ = telemetry;
    timing_ = timing_ || telemetry != nullptr;
  }

  /// Attaches the phase profiler: check()/checkPath()/model() run under
  /// a "solver" phase, nesting inside whatever phase the caller holds.
  void attachProfiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Permanently conjoins `cond` (width 1) to the path condition.
  /// Returns false if the path condition became syntactically unsat.
  bool addConstraint(const expr::ExprRef& cond);

  /// Is `assumption` satisfiable together with all constraints so far?
  /// `max_conflicts` of 0 means unbounded.
  CheckResult check(const expr::ExprRef& assumption,
                    std::uint64_t max_conflicts = 0);

  /// Is the current path condition itself satisfiable?
  CheckResult checkPath(std::uint64_t max_conflicts = 0);

  /// Solves the path condition (optionally plus `assumption`) and returns
  /// a satisfying assignment covering every variable created in the
  /// builder (unconstrained variables default to 0).
  std::optional<expr::Assignment> model(
      const expr::ExprRef& assumption = nullptr);

  const std::vector<expr::ExprRef>& constraints() const { return constraints_; }
  const QueryStats& stats() const { return stats_; }
  const SatSolver::Stats& satStats() const { return sat_.stats(); }

 private:
  /// The hasher keys the cache and the telemetry; an attached cache
  /// brings its own (worker-owned), telemetry without a cache falls back
  /// to the solver-private one.
  CanonicalHasher* activeHasher() {
    return hasher_ ? hasher_ : &own_hasher_;
  }
  bool hashingConstraints() const {
    return cache_ != nullptr || telemetry_ != nullptr;
  }

  expr::ExprBuilder& eb_;
  SatSolver sat_;
  BitBlaster blaster_;
  std::vector<expr::ExprRef> constraints_;
  QueryStats stats_;
  QueryCache* cache_ = nullptr;
  CanonicalHasher* hasher_ = nullptr;
  CanonicalHasher own_hasher_;
  SolverTelemetry* telemetry_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::Histogram* check_latency_ = nullptr;
  bool timing_ = false;
  CanonHash constraint_set_hash_;  ///< running canonical set hash
};

}  // namespace rvsym::solver
