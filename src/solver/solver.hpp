// PathSolver — the incremental bit-vector query interface used by the
// symbolic execution engine.
//
// One PathSolver accompanies one execution path: constraints are added
// permanently as the path progresses (they only ever grow), while branch
// feasibility checks are solved under assumption literals, which lets
// the underlying CDCL solver reuse everything it has learned on this
// path so far.
//
// check() answers through a layered pipeline (DESIGN.md §10), cheapest
// evidence first; every layer is sound, so the verdict — a semantic fact
// about (constraint set, assumption) — is identical no matter which
// layer produced it:
//
//   1. constant fast path (the builder folded the assumption),
//   2. exact-hash QueryCache (querycache.hpp): a verdict another path or
//      worker already solved for the identical canonical query,
//   3. counterexample cache (cexcache.hpp): the path-local or a shared
//      stored model is *evaluated* on the assumption (expr::eval), and
//      stored UNSAT cores answer by subset subsumption,
//   4. pre-bitblast rewrite (expr/rewrite.hpp): equality substitution
//      plus narrowing collapse assumptions the constraint set decides,
//   5. SAT solve — sliced to the constraints sharing variables with the
//      assumption and/or under per-conjunct selector assumptions for
//      UNSAT-core extraction, per SolverOptions.
//
// model() deliberately solves on a *fresh* solver built from the
// constraint set alone: the returned assignment is a pure function of
// (constraint set, assumption), independent of which feasibility checks
// ran — or were answered by any cache layer — beforehand.
// Concretizations and test vectors therefore stay byte-identical across
// worker counts, cache states and SolverOptions.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "expr/builder.hpp"
#include "expr/eval.hpp"
#include "expr/expr.hpp"
#include "expr/rewrite.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "solver/bitblast.hpp"
#include "solver/cexcache.hpp"
#include "solver/options.hpp"
#include "solver/querycache.hpp"
#include "solver/sat.hpp"

namespace rvsym::solver {

class SolverTelemetry;  // telemetry.hpp

enum class CheckResult { Sat, Unsat, Unknown };

struct QueryStats {
  std::uint64_t checks = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;
  std::uint64_t constant_fastpath = 0;
  std::uint64_t model_queries = 0;
  std::uint64_t cache_hits = 0;    ///< checks answered by the exact-hash cache
  std::uint64_t cache_misses = 0;  ///< checks past the exact-hash cache
  // Disposition split for the acceleration layers (ISSUE 6): where the
  // checks that missed the exact-hash cache were actually answered.
  std::uint64_t cex_model_hits = 0;   ///< a stored model evaluated the assumption
  std::uint64_t cex_core_hits = 0;    ///< UNSAT-core subset subsumption
  std::uint64_t rewrite_decided = 0;  ///< assumption collapsed to a constant
  std::uint64_t sliced_solves = 0;    ///< solves restricted to a strict slice
  std::uint64_t sat_solves = 0;       ///< SAT solver invocations (check/checkPath)
  /// Wall time spent inside SAT solves of check()/checkPath(), in
  /// microseconds — the same population the solver.check_us histogram
  /// records, so per-path totals sum to the registry's total exactly.
  /// Zero unless timing is enabled (enableTiming / attachMetrics).
  std::uint64_t solve_us = 0;
};

class PathSolver {
 public:
  explicit PathSolver(expr::ExprBuilder& eb);

  /// Selects the acceleration layers (default: all off, the plain
  /// incremental solver). Must be called before the first
  /// addConstraint(): slicing and core extraction switch the solver into
  /// selector-assumption mode, a structural choice made as constraints
  /// arrive.
  void setOptions(const SolverOptions& opts) { opts_ = opts; }
  const SolverOptions& options() const { return opts_; }

  /// Attaches the shared cross-path verdict cache. `hasher` must be
  /// owned by the same thread as this solver (it is not thread-safe)
  /// and must outlive it; `cache` may be shared across threads and may
  /// be null to attach the hasher alone (the counterexample cache and
  /// telemetry key off the same hasher).
  void attachCache(QueryCache* cache, CanonicalHasher* hasher) {
    cache_ = cache;
    hasher_ = hasher;
  }

  /// Attaches the shared counterexample/subsumption cache (cexcache.hpp).
  /// Only consulted when options().cex_cache is set.
  void attachCexCache(CexCache* cex) { cex_ = cex; }

  /// Attaches the metrics registry: every SAT solve records latency into
  /// the "solver.check_us" histogram, and the acceleration layers count
  /// into "solver.cex_model_hits" / "solver.cex_core_hits" /
  /// "solver.rewrite_decided" / "solver.sliced_solves". Cache hits and
  /// constant fast paths never reach the solver and are not in the
  /// histogram. Implies enableTiming(true).
  void attachMetrics(obs::MetricsRegistry* registry);

  /// Accumulates stats().solve_us across SAT solves (one clock pair per
  /// solve). Off by default so untimed hot paths never read the clock;
  /// the engines switch it on when a trace sink wants per-path
  /// solver-time attribution.
  void enableTiming(bool on) { timing_ = timing_ || on; }

  /// Attaches shared per-query telemetry (telemetry.hpp): every solved
  /// check reports hash, node/var/clause counts, split bitblast/SAT
  /// timings, verdict and cache disposition, and slow queries are dumped
  /// to the corpus. Must be attached before the first addConstraint()
  /// (the running canonical set hash starts then). Implies
  /// enableTiming(true).
  void attachTelemetry(SolverTelemetry* telemetry) {
    telemetry_ = telemetry;
    timing_ = timing_ || telemetry != nullptr;
  }

  /// Attaches the phase profiler: check()/checkPath()/model() run under
  /// a "solver" phase, nesting inside whatever phase the caller holds.
  void attachProfiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Permanently conjoins `cond` (width 1) to the path condition.
  /// Returns false if the path condition became syntactically unsat.
  /// Bit-blasting is deferred until a check actually needs the SAT
  /// solver, so checks answered by a cache layer never pay for it.
  bool addConstraint(const expr::ExprRef& cond);

  /// Is `assumption` satisfiable together with all constraints so far?
  /// `max_conflicts` of 0 means unbounded. Nonzero budgets bypass every
  /// cache layer (an Unknown is budget-dependent, not a semantic fact).
  CheckResult check(const expr::ExprRef& assumption,
                    std::uint64_t max_conflicts = 0);

  /// Is the current path condition itself satisfiable?
  CheckResult checkPath(std::uint64_t max_conflicts = 0);

  /// Solves the path condition (optionally plus `assumption`) and returns
  /// a satisfying assignment covering every variable created in the
  /// builder (unconstrained variables default to 0).
  std::optional<expr::Assignment> model(
      const expr::ExprRef& assumption = nullptr);

  const std::vector<expr::ExprRef>& constraints() const { return constraints_; }
  const QueryStats& stats() const { return stats_; }
  const SatSolver::Stats& satStats() const { return sat_.stats(); }

 private:
  /// The hasher keys the cache and the telemetry; an attached cache
  /// brings its own (worker-owned), telemetry without a cache falls back
  /// to the solver-private one.
  CanonicalHasher* activeHasher() {
    return hasher_ ? hasher_ : &own_hasher_;
  }
  bool hashingConstraints() const {
    return cache_ != nullptr || telemetry_ != nullptr || cex_ != nullptr;
  }

  /// Blasts constraints added since the last flush: selector mode keeps
  /// one literal per conjunct (solved as assumptions), legacy mode
  /// asserts unit clauses.
  void flushBlast();

  // Union-find over variable ids, maintained per added constraint;
  // constraints in the same component share variables transitively.
  std::uint64_t ufFind(std::uint64_t v);
  /// Indices of the constraints var-connected to the assumption.
  void computeSlice(const expr::ExprRef& assumption,
                    std::vector<std::size_t>* out);

  /// Rebuilds a builder-id assignment from a stored canonical model.
  expr::Assignment translateModel(const CexCache::Model& m);
  /// Reads the full model off the incremental solver after a Sat solve
  /// whose assumption set covered every conjunct; makes it the local
  /// model.
  void harvestLocalModel();
  /// Publishes the local model to the shared cache under the current set
  /// hash and (when `assumption_hash`) under set ∪ {assumption} — the
  /// set the engine is about to create by conjoining the assumption.
  void shareLocalModel(const CanonHash* assumption_hash);
  /// Stores an UNSAT core mapped back from the final conflict; falls
  /// back to the full assumed element set when minimization is off or a
  /// literal cannot be attributed.
  void storeCore(Lit assumption_lit, const CanonHash* assumption_hash,
                 const std::vector<std::size_t>& solved_conjuncts);
  void recordAnswered(const CanonHash& key, const expr::ExprRef& assumption,
                      CheckResult verdict, int disposition);

  expr::ExprBuilder& eb_;
  SatSolver sat_;
  BitBlaster blaster_;
  std::vector<expr::ExprRef> constraints_;
  QueryStats stats_;
  QueryCache* cache_ = nullptr;
  CanonicalHasher* hasher_ = nullptr;
  CanonicalHasher own_hasher_;
  SolverTelemetry* telemetry_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::Histogram* check_latency_ = nullptr;
  bool timing_ = false;
  CanonHash constraint_set_hash_;  ///< running canonical set hash

  SolverOptions opts_ = SolverOptions::none();
  CexCache* cex_ = nullptr;
  obs::Counter* m_cex_model_ = nullptr;
  obs::Counter* m_cex_core_ = nullptr;
  obs::Counter* m_rewrite_ = nullptr;
  obs::Counter* m_sliced_ = nullptr;

  std::vector<CanonHash> constraint_hashes_;  ///< per conjunct, when hashing
  expr::SubstMap subst_;                      ///< variables pinned by equalities
  std::vector<std::vector<std::uint64_t>> constraint_vars_;  ///< per conjunct
  std::vector<std::uint64_t> uf_parent_;      ///< union-find, indexed by var id
  std::vector<Lit> conj_lits_;       ///< selector literal per conjunct
  std::unordered_map<int, std::size_t> lit_to_conj_;  ///< Lit.x -> conjunct
  std::size_t blasted_count_ = 0;    ///< constraints_ prefix already blasted
  std::size_t selector_conjuncts_ = 0;  ///< non-constant conjuncts

  /// Most recent full-set satisfying assignment; invalidated when a new
  /// conjunct evaluates false under it. Variables created later read as
  /// 0 under expr::evaluate, matching the zero-extension a stored model
  /// gets, so validity is preserved as the path grows.
  expr::Assignment local_model_;
  bool local_model_valid_ = false;
};

}  // namespace rvsym::solver
