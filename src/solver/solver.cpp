#include "solver/solver.hpp"

namespace rvsym::solver {

PathSolver::PathSolver(expr::ExprBuilder& eb)
    : eb_(eb), blaster_(sat_, eb) {}

bool PathSolver::addConstraint(const expr::ExprRef& cond) {
  constraints_.push_back(cond);
  if (cond->isConstant()) return cond->constantValue() != 0;
  return blaster_.assertTrue(cond);
}

CheckResult PathSolver::check(const expr::ExprRef& assumption,
                              std::uint64_t max_conflicts) {
  ++stats_.checks;
  if (assumption->isConstant()) {
    ++stats_.constant_fastpath;
    if (assumption->constantValue() == 0) {
      ++stats_.unsat;
      return CheckResult::Unsat;
    }
    return checkPath(max_conflicts);
  }
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  const Lit a = blaster_.blastBool(assumption);
  switch (sat_.solve({a}, max_conflicts)) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      return CheckResult::Sat;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      return CheckResult::Unsat;
    case SatSolver::Result::Unknown:
      ++stats_.unknown;
      return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

CheckResult PathSolver::checkPath(std::uint64_t max_conflicts) {
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  switch (sat_.solve({}, max_conflicts)) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      return CheckResult::Sat;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      return CheckResult::Unsat;
    case SatSolver::Result::Unknown:
      ++stats_.unknown;
      return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

std::optional<expr::Assignment> PathSolver::model(
    const expr::ExprRef& assumption) {
  ++stats_.model_queries;
  if (!sat_.okay()) return std::nullopt;

  std::vector<Lit> assumptions;
  if (assumption) {
    if (assumption->isConstant()) {
      if (assumption->constantValue() == 0) return std::nullopt;
    } else {
      assumptions.push_back(blaster_.blastBool(assumption));
    }
  }
  if (sat_.solve(assumptions) != SatSolver::Result::Sat) return std::nullopt;

  expr::Assignment asg;
  for (std::uint64_t id = 0; id < eb_.numVariables(); ++id) {
    const expr::ExprRef& v = eb_.variableById(id);
    asg.set(id, blaster_.modelValue(v));
  }
  return asg;
}

}  // namespace rvsym::solver
