#include "solver/solver.hpp"

#include <chrono>

namespace rvsym::solver {

namespace {

/// Times one SAT solve into the per-path stats and (when attached) the
/// shared latency histogram. The identical microsecond value goes to
/// both, so per-path solve_us totals sum to the registry histogram's
/// total exactly.
class SolveTimer {
 public:
  SolveTimer(bool enabled, QueryStats& stats, obs::Histogram* h)
      : enabled_(enabled), stats_(stats), h_(h) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  ~SolveTimer() {
    if (!enabled_) return;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    stats_.solve_us += us;
    if (h_) h_->record(us);
  }
  SolveTimer(const SolveTimer&) = delete;
  SolveTimer& operator=(const SolveTimer&) = delete;

 private:
  bool enabled_;
  QueryStats& stats_;
  obs::Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

PathSolver::PathSolver(expr::ExprBuilder& eb)
    : eb_(eb), blaster_(sat_, eb) {}

bool PathSolver::addConstraint(const expr::ExprRef& cond) {
  constraints_.push_back(cond);
  if (cache_)
    constraint_set_hash_ =
        canonSetAdd(constraint_set_hash_, hasher_->hash(cond));
  if (cond->isConstant()) return cond->constantValue() != 0;
  return blaster_.assertTrue(cond);
}

CheckResult PathSolver::check(const expr::ExprRef& assumption,
                              std::uint64_t max_conflicts) {
  ++stats_.checks;
  if (assumption->isConstant()) {
    ++stats_.constant_fastpath;
    if (assumption->constantValue() == 0) {
      ++stats_.unsat;
      return CheckResult::Unsat;
    }
    return checkPath(max_conflicts);
  }
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }

  // Cross-path cache: the verdict for (constraint set, assumption) is a
  // semantic fact — any prior path or worker that solved the same query
  // answers this one for free.
  CanonHash key;
  if (cache_) {
    key = canonQueryKey(constraint_set_hash_, hasher_->hash(assumption));
    if (const std::optional<bool> hit = cache_->lookup(key)) {
      ++stats_.cache_hits;
      ++(*hit ? stats_.sat : stats_.unsat);
      return *hit ? CheckResult::Sat : CheckResult::Unsat;
    }
    ++stats_.cache_misses;
  }

  const Lit a = blaster_.blastBool(assumption);
  const SolveTimer timer(timing_, stats_, check_latency_);
  switch (sat_.solve({a}, max_conflicts)) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      if (cache_) cache_->insert(key, true);
      return CheckResult::Sat;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      if (cache_) cache_->insert(key, false);
      return CheckResult::Unsat;
    case SatSolver::Result::Unknown:
      ++stats_.unknown;
      // Budget-dependent — never cached.
      return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

CheckResult PathSolver::checkPath(std::uint64_t max_conflicts) {
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  const SolveTimer timer(timing_, stats_, check_latency_);
  switch (sat_.solve({}, max_conflicts)) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      return CheckResult::Sat;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      return CheckResult::Unsat;
    case SatSolver::Result::Unknown:
      ++stats_.unknown;
      return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

std::optional<expr::Assignment> PathSolver::model(
    const expr::ExprRef& assumption) {
  ++stats_.model_queries;
  if (!sat_.okay()) return std::nullopt;
  if (assumption && assumption->isConstant() && assumption->constantValue() == 0)
    return std::nullopt;

  // Canonical model: a fresh solver over the constraint set alone, so the
  // assignment depends only on (constraint set, assumption) — never on
  // the feasibility checks (or cache hits) that preceded it. This keeps
  // concretized values and test vectors deterministic across worker
  // counts, schedules and cache states.
  SatSolver fresh;
  BitBlaster fresh_blaster(fresh, eb_);
  for (const expr::ExprRef& c : constraints_) {
    if (c->isConstant()) {
      if (c->constantValue() == 0) return std::nullopt;
      continue;
    }
    if (!fresh_blaster.assertTrue(c)) return std::nullopt;
  }
  std::vector<Lit> assumptions;
  if (assumption && !assumption->isConstant())
    assumptions.push_back(fresh_blaster.blastBool(assumption));
  if (fresh.solve(assumptions) != SatSolver::Result::Sat) return std::nullopt;

  expr::Assignment asg;
  for (std::uint64_t id = 0; id < eb_.numVariables(); ++id) {
    const expr::ExprRef& v = eb_.variableById(id);
    asg.set(id, fresh_blaster.modelValue(v));
  }
  return asg;
}

}  // namespace rvsym::solver
