#include "solver/solver.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "obs/flightrec/ring.hpp"
#include "solver/corpus.hpp"
#include "solver/telemetry.hpp"

namespace rvsym::solver {

namespace {

/// Times one SAT solve into the per-path stats and (when attached) the
/// shared latency histogram. The identical microsecond value goes to
/// both, so per-path solve_us totals sum to the registry histogram's
/// total exactly.
class SolveTimer {
 public:
  SolveTimer(bool enabled, QueryStats& stats, obs::Histogram* h)
      : enabled_(enabled), stats_(stats), h_(h) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  ~SolveTimer() {
    if (!enabled_) return;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    stats_.solve_us += us;
    if (h_) h_->record(us);
  }
  SolveTimer(const SolveTimer&) = delete;
  SolveTimer& operator=(const SolveTimer&) = delete;

 private:
  bool enabled_;
  QueryStats& stats_;
  obs::Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

PathSolver::PathSolver(expr::ExprBuilder& eb)
    : eb_(eb), blaster_(sat_, eb) {}

void PathSolver::attachMetrics(obs::MetricsRegistry* registry) {
  if (!registry) return;
  check_latency_ = &registry->histogram("solver.check_us");
  m_cex_model_ = &registry->counter("solver.cex_model_hits");
  m_cex_core_ = &registry->counter("solver.cex_core_hits");
  m_rewrite_ = &registry->counter("solver.rewrite_decided");
  m_sliced_ = &registry->counter("solver.sliced_solves");
  timing_ = true;
}

bool PathSolver::addConstraint(const expr::ExprRef& cond) {
  constraints_.push_back(cond);
  if (hashingConstraints()) {
    const CanonHash ch = activeHasher()->hash(cond);
    constraint_set_hash_ = canonSetAdd(constraint_set_hash_, ch);
    constraint_hashes_.push_back(ch);
  }
  if (opts_.rewrite) expr::addEqualitySubst(eb_, cond, &subst_);
  if (opts_.slicing) {
    constraint_vars_.emplace_back();
    if (!cond->isConstant()) {
      std::vector<std::uint64_t>& vars = constraint_vars_.back();
      expr::collectVariableIds(cond, &vars);
      if (!vars.empty()) {
        const std::uint64_t root = ufFind(vars[0]);
        for (std::size_t j = 1; j < vars.size(); ++j)
          uf_parent_[ufFind(vars[j])] = root;
      }
    }
  }
  // The local model stays a witness of the whole set only if it also
  // satisfies the new conjunct (variables it does not mention read as 0,
  // the same extension expr::evaluate applies everywhere).
  if (local_model_valid_ && !cond->isConstant() &&
      expr::evaluate(cond, local_model_) != 1)
    local_model_valid_ = false;
  if (cond->isConstant()) return cond->constantValue() != 0;
  return true;  // bit-blasting deferred to flushBlast()
}

void PathSolver::flushBlast() {
  for (; blasted_count_ < constraints_.size(); ++blasted_count_) {
    const expr::ExprRef& c = constraints_[blasted_count_];
    if (c->isConstant()) {
      conj_lits_.push_back(kLitUndef);
      continue;
    }
    if (opts_.selectorMode()) {
      // Selector mode: the conjunct's literal is *assumed* per solve,
      // never asserted — the clause database stays pure Tseitin
      // definitions (satisfiable alone), which is what makes the final
      // conflict a sound core over the assumed conjuncts.
      const Lit l = blaster_.blastBool(c);
      conj_lits_.push_back(l);
      lit_to_conj_.emplace(l.x, blasted_count_);
      ++selector_conjuncts_;
    } else {
      conj_lits_.push_back(kLitUndef);
      blaster_.assertTrue(c);  // may make the solver not-okay
    }
  }
}

std::uint64_t PathSolver::ufFind(std::uint64_t v) {
  if (v >= uf_parent_.size()) {
    const std::uint64_t old = uf_parent_.size();
    uf_parent_.resize(static_cast<std::size_t>(v) + 1);
    for (std::uint64_t i = old; i <= v; ++i)
      uf_parent_[static_cast<std::size_t>(i)] = i;
  }
  while (uf_parent_[static_cast<std::size_t>(v)] != v) {
    uf_parent_[static_cast<std::size_t>(v)] =
        uf_parent_[static_cast<std::size_t>(
            uf_parent_[static_cast<std::size_t>(v)])];
    v = uf_parent_[static_cast<std::size_t>(v)];
  }
  return v;
}

void PathSolver::computeSlice(const expr::ExprRef& assumption,
                              std::vector<std::size_t>* out) {
  std::vector<std::uint64_t> avars;
  expr::collectVariableIds(assumption, &avars);
  std::vector<std::uint64_t> roots;
  for (const std::uint64_t v : avars) {
    const std::uint64_t r = ufFind(v);
    if (std::find(roots.begin(), roots.end(), r) == roots.end())
      roots.push_back(r);
  }
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (constraint_vars_[i].empty()) continue;
    // All variables of one conjunct were unioned when it was added, so
    // any one of them finds the conjunct's component.
    const std::uint64_t r = ufFind(constraint_vars_[i][0]);
    if (std::find(roots.begin(), roots.end(), r) != roots.end())
      out->push_back(i);
  }
}

expr::Assignment PathSolver::translateModel(const CexCache::Model& m) {
  expr::Assignment asg;
  CanonicalHasher* hasher = activeHasher();
  const std::uint64_t n = eb_.numVariables();
  for (std::uint64_t id = 0; id < n; ++id) {
    const auto v = m.get(hasher->hash(eb_.variableById(id)));
    if (v) asg.set(id, *v);
  }
  return asg;
}

void PathSolver::harvestLocalModel() {
  local_model_ = expr::Assignment();
  const std::uint64_t n = eb_.numVariables();
  for (std::uint64_t id = 0; id < n; ++id)
    local_model_.set(id, blaster_.modelValue(eb_.variableById(id)));
  local_model_valid_ = true;
}

void PathSolver::shareLocalModel(const CanonHash* assumption_hash) {
  if (!cex_ || !local_model_valid_ || !hashingConstraints()) return;
  CexCache::Model m;
  CanonicalHasher* hasher = activeHasher();
  const std::uint64_t n = eb_.numVariables();
  m.values.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t id = 0; id < n; ++id)
    m.values.emplace_back(hasher->hash(eb_.variableById(id)),
                          local_model_.get(id));
  if (assumption_hash)
    // The engine conjoins a Sat-checked assumption right away; seed the
    // successor set's entry so other paths/workers start with a witness.
    cex_->insertModel(canonSetAdd(constraint_set_hash_, *assumption_hash), m);
  cex_->insertModel(constraint_set_hash_, std::move(m));
}

void PathSolver::storeCore(Lit assumption_lit, const CanonHash* assumption_hash,
                           const std::vector<std::size_t>& solved_conjuncts) {
  if (!cex_ || !hashingConstraints()) return;
  std::vector<CanonHash> elems;
  bool minimized = false;
  if (opts_.unsat_cores && !sat_.conflict().empty()) {
    // Map the final conflict's assumption literals back to conjuncts.
    minimized = true;
    for (const Lit l : sat_.conflict()) {
      if (assumption_hash && l == assumption_lit) {
        elems.push_back(*assumption_hash);
        continue;
      }
      const auto it = lit_to_conj_.find(l.x);
      if (it == lit_to_conj_.end()) {
        elems.clear();
        minimized = false;  // unattributable literal: store unminimized
        break;
      }
      elems.push_back(constraint_hashes_[it->second]);
    }
  }
  if (!minimized) {
    // The full assumed element set is itself a valid (weaker) core.
    if (!solved_conjuncts.empty()) {
      for (const std::size_t idx : solved_conjuncts)
        elems.push_back(constraint_hashes_[idx]);
    } else {
      for (std::size_t i = 0; i < constraints_.size(); ++i)
        if (!constraints_[i]->isConstant())
          elems.push_back(constraint_hashes_[i]);
    }
    if (assumption_hash) elems.push_back(*assumption_hash);
  }
  cex_->insertCore(std::move(elems));
}

void PathSolver::recordAnswered(const CanonHash& key,
                                const expr::ExprRef& assumption,
                                CheckResult verdict, int disposition) {
  if (!telemetry_) return;
  SolverTelemetry::Query q;
  q.hash = key;
  q.expr_nodes = assumption ? countUniqueNodes({assumption})
                            : countUniqueNodes(constraints_);
  q.verdict = verdict;
  q.disposition = static_cast<SolverTelemetry::Disposition>(disposition);
  telemetry_->record(q);
}

CheckResult PathSolver::check(const expr::ExprRef& assumption,
                              std::uint64_t max_conflicts) {
  ++stats_.checks;
  if (assumption->isConstant()) {
    ++stats_.constant_fastpath;
    if (assumption->constantValue() == 0) {
      ++stats_.unsat;
      return CheckResult::Unsat;
    }
    // Delegates before opening the "solver" phase so the profiler never
    // sees a nested solver;solver stack.
    return checkPath(max_conflicts);
  }
  const obs::PhaseTimer phase(profiler_, "solver");
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }

  CanonHash a_hash;
  CanonHash key;
  if (hashingConstraints()) {
    a_hash = activeHasher()->hash(assumption);
    key = canonQueryKey(constraint_set_hash_, a_hash);
  }

  // Layer 1 — exact-hash cache: the verdict for (constraint set,
  // assumption) is a semantic fact; any prior path or worker that solved
  // the same query answers this one for free.
  if (cache_) {
    if (const std::optional<bool> hit = cache_->lookup(key)) {
      ++stats_.cache_hits;
      ++(*hit ? stats_.sat : stats_.unsat);
      recordAnswered(key, assumption,
                     *hit ? CheckResult::Sat : CheckResult::Unsat,
                     static_cast<int>(SolverTelemetry::Disposition::Hit));
      return *hit ? CheckResult::Sat : CheckResult::Unsat;
    }
    ++stats_.cache_misses;
  }

  // Budgeted checks bypass the acceleration layers entirely: an Unknown
  // is budget-dependent and must come from the real solver.
  const bool accel = max_conflicts == 0;

  // Layer 2a — counterexample cache, Sat side: a known model of the
  // current set decides the assumption by evaluation alone.
  if (accel && opts_.cex_cache) {
    bool witnessed =
        local_model_valid_ && expr::evaluate(assumption, local_model_) == 1;
    if (!witnessed && cex_) {
      if (const auto m = cex_->lookupModel(constraint_set_hash_)) {
        expr::Assignment asg = translateModel(*m);
        if (expr::evaluate(assumption, asg) == 1) {
          local_model_ = std::move(asg);
          local_model_valid_ = true;
          witnessed = true;
        }
      }
    }
    if (witnessed) {
      ++stats_.sat;
      ++stats_.cex_model_hits;
      if (m_cex_model_) m_cex_model_->add(1);
      if (cache_) cache_->insert(key, true);
      recordAnswered(key, assumption, CheckResult::Sat,
                     static_cast<int>(SolverTelemetry::Disposition::CexModel));
      return CheckResult::Sat;
    }
  }

  // Layer 2b — counterexample cache, Unsat side: a stored core that is a
  // subset of {conjuncts} ∪ {assumption} proves the query UNSAT.
  if (accel && opts_.cex_cache && cex_ && hashingConstraints()) {
    std::vector<CanonHash> elems = constraint_hashes_;
    elems.push_back(a_hash);
    if (cex_->subsumesUnsat(elems)) {
      ++stats_.unsat;
      ++stats_.cex_core_hits;
      if (m_cex_core_) m_cex_core_->add(1);
      if (cache_) cache_->insert(key, false);
      recordAnswered(key, assumption, CheckResult::Unsat,
                     static_cast<int>(SolverTelemetry::Disposition::CexCore));
      return CheckResult::Unsat;
    }
  }

  // Layer 3 — pre-bitblast rewrite: under the equality environment the
  // constraint set implies, the assumption may fold to a constant.
  if (accel && opts_.rewrite) {
    const expr::ExprRef ra = expr::rewriteExpr(eb_, assumption, subst_);
    if (ra->isConstant()) {
      ++stats_.rewrite_decided;
      if (m_rewrite_) m_rewrite_->add(1);
      if (ra->constantValue() == 0) {
        // Constraints ⊨ ¬assumption, so the conjunction is UNSAT.
        ++stats_.unsat;
        if (cache_) cache_->insert(key, false);
        recordAnswered(key, assumption, CheckResult::Unsat,
                       static_cast<int>(SolverTelemetry::Disposition::Rewrite));
        return CheckResult::Unsat;
      }
      // Constraints ⊨ assumption: satisfiable iff the path itself is.
      const CheckResult r = checkPath(max_conflicts);
      if (cache_ && r != CheckResult::Unknown)
        cache_->insert(key, r == CheckResult::Sat);
      return r;
    }
  }

  // Layer 4 — SAT solve.
  flushBlast();
  if (!sat_.okay()) {
    ++stats_.unsat;
    if (cache_) cache_->insert(key, false);
    return CheckResult::Unsat;
  }

  std::uint64_t bitblast_us = 0;
  Lit a;
  if (telemetry_) {
    const auto t0 = std::chrono::steady_clock::now();
    a = blaster_.blastBool(assumption);
    bitblast_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    a = blaster_.blastBool(assumption);
  }

  std::vector<std::size_t> solved_conjuncts;
  std::vector<Lit> assumps;
  bool sliced = false;
  if (opts_.selectorMode()) {
    if (accel && opts_.slicing) {
      computeSlice(assumption, &solved_conjuncts);
      sliced = solved_conjuncts.size() < selector_conjuncts_;
    } else {
      for (std::size_t i = 0; i < constraints_.size(); ++i)
        if (!(conj_lits_[i] == kLitUndef)) solved_conjuncts.push_back(i);
    }
    assumps.reserve(solved_conjuncts.size() + 1);
    for (const std::size_t idx : solved_conjuncts)
      assumps.push_back(conj_lits_[idx]);
  }
  assumps.push_back(a);

  // Crash forensics: note the solve on the flight recorder and publish
  // the full query text so a crash bundle names the query that was on
  // the SAT solver (both no-ops unless forensics is installed).
  obs::flightrec::emit(obs::flightrec::EventKind::SolverBegin, key.lo, key.hi,
                       constraints_.size(), "check");
  if (telemetry_) telemetry_->captureInFlight(constraints_, assumption, key);

  const std::uint64_t solve_us_before = stats_.solve_us;
  SatSolver::Result sr;
  {
    const SolveTimer timer(timing_, stats_, check_latency_);
    ++stats_.sat_solves;
    sr = sat_.solve(assumps, max_conflicts);
  }

  if (sr == SatSolver::Result::Sat && sliced) {
    // A sliced Sat only answers the whole query if the untouched
    // conjuncts hold too. They share no variables with the slice, so a
    // merged assignment — slice variables from the fresh SAT model, the
    // rest from the local model (or 0) — either witnesses the whole set
    // or we fall back to solving with every conjunct assumed.
    std::vector<char> in_slice(constraints_.size(), 0);
    std::unordered_set<std::uint64_t> slice_vars;
    for (const std::size_t idx : solved_conjuncts) {
      in_slice[idx] = 1;
      for (const std::uint64_t v : constraint_vars_[idx]) slice_vars.insert(v);
    }
    {
      std::vector<std::uint64_t> avars;
      expr::collectVariableIds(assumption, &avars);
      for (const std::uint64_t v : avars) slice_vars.insert(v);
    }
    expr::Assignment merged;
    const std::uint64_t n = eb_.numVariables();
    for (std::uint64_t id = 0; id < n; ++id)
      merged.set(id, slice_vars.count(id) != 0
                         ? blaster_.modelValue(eb_.variableById(id))
                         : (local_model_valid_ ? local_model_.get(id) : 0));
    bool whole = true;
    for (std::size_t i = 0; i < constraints_.size(); ++i) {
      if (in_slice[i]) continue;
      if (expr::evaluate(constraints_[i], merged) != 1) {
        whole = false;
        break;
      }
    }
    if (whole) {
      local_model_ = std::move(merged);
      local_model_valid_ = true;
    } else {
      solved_conjuncts.clear();
      assumps.clear();
      for (std::size_t i = 0; i < constraints_.size(); ++i)
        if (!(conj_lits_[i] == kLitUndef)) solved_conjuncts.push_back(i);
      for (const std::size_t idx : solved_conjuncts)
        assumps.push_back(conj_lits_[idx]);
      assumps.push_back(a);
      {
        const SolveTimer timer(timing_, stats_, check_latency_);
        ++stats_.sat_solves;
        sr = sat_.solve(assumps, max_conflicts);
      }
      sliced = false;
      if (sr == SatSolver::Result::Sat) harvestLocalModel();
    }
  } else if (sr == SatSolver::Result::Sat && accel &&
             (opts_.cex_cache || opts_.slicing)) {
    // The assumed set covered every conjunct: the incremental model is a
    // whole-set witness.
    harvestLocalModel();
  }
  if (sliced) {
    ++stats_.sliced_solves;
    if (m_sliced_) m_sliced_->add(1);
  }

  CheckResult verdict;
  switch (sr) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      if (cache_) cache_->insert(key, true);
      if (accel && opts_.cex_cache && local_model_valid_)
        shareLocalModel(hashingConstraints() ? &a_hash : nullptr);
      verdict = CheckResult::Sat;
      break;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      if (cache_) cache_->insert(key, false);
      if (accel && opts_.cex_cache)
        storeCore(a, hashingConstraints() ? &a_hash : nullptr,
                  solved_conjuncts);
      verdict = CheckResult::Unsat;
      break;
    default:
      ++stats_.unknown;
      // Budget-dependent — never cached.
      verdict = CheckResult::Unknown;
      break;
  }

  if (telemetry_) telemetry_->clearInFlight();
  obs::flightrec::emit(obs::flightrec::EventKind::SolverEnd, key.lo,
                       static_cast<std::uint64_t>(verdict),
                       stats_.solve_us - solve_us_before, "check");

  if (telemetry_) {
    SolverTelemetry::Query q;
    q.hash = key;
    q.expr_nodes = countUniqueNodes({assumption});
    q.sat_vars = static_cast<std::uint64_t>(sat_.numVars());
    q.sat_clauses = sat_.numProblemClauses();
    q.bitblast_us = bitblast_us;
    q.sat_us = stats_.solve_us - solve_us_before;
    q.verdict = verdict;
    q.disposition = sliced   ? SolverTelemetry::Disposition::Sliced
                    : cache_ ? SolverTelemetry::Disposition::Miss
                             : SolverTelemetry::Disposition::Uncached;
    if (telemetry_->record(q))
      telemetry_->dump(q, constraints_, assumption, sat_.exportDimacs(assumps));
  }
  return verdict;
}

CheckResult PathSolver::checkPath(std::uint64_t max_conflicts) {
  const obs::PhaseTimer phase(profiler_, "solver");
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  const bool accel = max_conflicts == 0;

  // Counterexample cache: a witness of exactly this set answers Sat
  // without touching the solver; a stored core that is a subset of the
  // conjuncts answers Unsat.
  if (accel && opts_.cex_cache) {
    bool witnessed = local_model_valid_;
    if (!witnessed && cex_) {
      if (const auto m = cex_->lookupModel(constraint_set_hash_)) {
        local_model_ = translateModel(*m);
        local_model_valid_ = true;
        witnessed = true;
      }
    }
    if (witnessed) {
      ++stats_.sat;
      ++stats_.cex_model_hits;
      if (m_cex_model_) m_cex_model_->add(1);
      recordAnswered(canonQueryKey(constraint_set_hash_, CanonHash{}), nullptr,
                     CheckResult::Sat,
                     static_cast<int>(SolverTelemetry::Disposition::CexModel));
      return CheckResult::Sat;
    }
    if (cex_ && hashingConstraints() && cex_->subsumesUnsat(constraint_hashes_)) {
      ++stats_.unsat;
      ++stats_.cex_core_hits;
      if (m_cex_core_) m_cex_core_->add(1);
      recordAnswered(canonQueryKey(constraint_set_hash_, CanonHash{}), nullptr,
                     CheckResult::Unsat,
                     static_cast<int>(SolverTelemetry::Disposition::CexCore));
      return CheckResult::Unsat;
    }
  }

  flushBlast();
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  std::vector<std::size_t> solved_conjuncts;
  std::vector<Lit> assumps;
  if (opts_.selectorMode()) {
    for (std::size_t i = 0; i < constraints_.size(); ++i)
      if (!(conj_lits_[i] == kLitUndef)) solved_conjuncts.push_back(i);
    assumps.reserve(solved_conjuncts.size());
    for (const std::size_t idx : solved_conjuncts)
      assumps.push_back(conj_lits_[idx]);
  }
  const CanonHash path_key = hashingConstraints()
                                 ? canonQueryKey(constraint_set_hash_,
                                                 CanonHash{})
                                 : CanonHash{};
  obs::flightrec::emit(obs::flightrec::EventKind::SolverBegin, path_key.lo,
                       path_key.hi, constraints_.size(), "path");
  if (telemetry_) telemetry_->captureInFlight(constraints_, nullptr, path_key);

  const std::uint64_t solve_us_before = stats_.solve_us;
  SatSolver::Result sr;
  {
    const SolveTimer timer(timing_, stats_, check_latency_);
    ++stats_.sat_solves;
    sr = sat_.solve(assumps, max_conflicts);
  }
  if (telemetry_) telemetry_->clearInFlight();
  obs::flightrec::emit(obs::flightrec::EventKind::SolverEnd, path_key.lo,
                       static_cast<std::uint64_t>(
                           sr == SatSolver::Result::Sat
                               ? CheckResult::Sat
                               : sr == SatSolver::Result::Unsat
                                     ? CheckResult::Unsat
                                     : CheckResult::Unknown),
                       stats_.solve_us - solve_us_before, "path");
  CheckResult verdict;
  switch (sr) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      if (accel && (opts_.cex_cache || opts_.slicing)) {
        harvestLocalModel();
        if (opts_.cex_cache) shareLocalModel(nullptr);
      }
      verdict = CheckResult::Sat;
      break;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      if (accel && opts_.cex_cache)
        storeCore(kLitUndef, nullptr, solved_conjuncts);
      verdict = CheckResult::Unsat;
      break;
    default:
      ++stats_.unknown;
      verdict = CheckResult::Unknown;
      break;
  }
  if (telemetry_) {
    SolverTelemetry::Query q;
    // Path-feasibility query: the key is the constraint set alone.
    q.hash = canonQueryKey(constraint_set_hash_, CanonHash{});
    q.expr_nodes = countUniqueNodes(constraints_);
    q.sat_vars = static_cast<std::uint64_t>(sat_.numVars());
    q.sat_clauses = sat_.numProblemClauses();
    q.sat_us = stats_.solve_us - solve_us_before;
    q.verdict = verdict;
    if (telemetry_->record(q))
      telemetry_->dump(q, constraints_, nullptr, sat_.exportDimacs(assumps));
  }
  return verdict;
}

std::optional<expr::Assignment> PathSolver::model(
    const expr::ExprRef& assumption) {
  const obs::PhaseTimer phase(profiler_, "solver");
  ++stats_.model_queries;
  if (!sat_.okay()) return std::nullopt;
  if (assumption && assumption->isConstant() && assumption->constantValue() == 0)
    return std::nullopt;

  // Canonical model: a fresh solver over the constraint set alone, so the
  // assignment depends only on (constraint set, assumption) — never on
  // the feasibility checks (or cache hits) that preceded it. This keeps
  // concretized values and test vectors deterministic across worker
  // counts, schedules, cache states and SolverOptions.
  SatSolver fresh;
  BitBlaster fresh_blaster(fresh, eb_);
  for (const expr::ExprRef& c : constraints_) {
    if (c->isConstant()) {
      if (c->constantValue() == 0) return std::nullopt;
      continue;
    }
    if (!fresh_blaster.assertTrue(c)) return std::nullopt;
  }
  std::vector<Lit> assumptions;
  if (assumption && !assumption->isConstant())
    assumptions.push_back(fresh_blaster.blastBool(assumption));
  if (fresh.solve(assumptions) != SatSolver::Result::Sat) return std::nullopt;

  expr::Assignment asg;
  for (std::uint64_t id = 0; id < eb_.numVariables(); ++id) {
    const expr::ExprRef& v = eb_.variableById(id);
    asg.set(id, fresh_blaster.modelValue(v));
  }
  return asg;
}

}  // namespace rvsym::solver
