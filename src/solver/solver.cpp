#include "solver/solver.hpp"

#include <chrono>

#include "solver/corpus.hpp"
#include "solver/telemetry.hpp"

namespace rvsym::solver {

namespace {

/// Times one SAT solve into the per-path stats and (when attached) the
/// shared latency histogram. The identical microsecond value goes to
/// both, so per-path solve_us totals sum to the registry histogram's
/// total exactly.
class SolveTimer {
 public:
  SolveTimer(bool enabled, QueryStats& stats, obs::Histogram* h)
      : enabled_(enabled), stats_(stats), h_(h) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  ~SolveTimer() {
    if (!enabled_) return;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    stats_.solve_us += us;
    if (h_) h_->record(us);
  }
  SolveTimer(const SolveTimer&) = delete;
  SolveTimer& operator=(const SolveTimer&) = delete;

 private:
  bool enabled_;
  QueryStats& stats_;
  obs::Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

PathSolver::PathSolver(expr::ExprBuilder& eb)
    : eb_(eb), blaster_(sat_, eb) {}

bool PathSolver::addConstraint(const expr::ExprRef& cond) {
  constraints_.push_back(cond);
  if (hashingConstraints())
    constraint_set_hash_ =
        canonSetAdd(constraint_set_hash_, activeHasher()->hash(cond));
  if (cond->isConstant()) return cond->constantValue() != 0;
  return blaster_.assertTrue(cond);
}

CheckResult PathSolver::check(const expr::ExprRef& assumption,
                              std::uint64_t max_conflicts) {
  ++stats_.checks;
  if (assumption->isConstant()) {
    ++stats_.constant_fastpath;
    if (assumption->constantValue() == 0) {
      ++stats_.unsat;
      return CheckResult::Unsat;
    }
    // Delegates before opening the "solver" phase so the profiler never
    // sees a nested solver;solver stack.
    return checkPath(max_conflicts);
  }
  const obs::PhaseTimer phase(profiler_, "solver");
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }

  // Cross-path cache: the verdict for (constraint set, assumption) is a
  // semantic fact — any prior path or worker that solved the same query
  // answers this one for free.
  CanonHash key;
  if (hashingConstraints())
    key = canonQueryKey(constraint_set_hash_, activeHasher()->hash(assumption));
  if (cache_) {
    if (const std::optional<bool> hit = cache_->lookup(key)) {
      ++stats_.cache_hits;
      ++(*hit ? stats_.sat : stats_.unsat);
      if (telemetry_) {
        SolverTelemetry::Query q;
        q.hash = key;
        q.expr_nodes = countUniqueNodes({assumption});
        q.verdict = *hit ? CheckResult::Sat : CheckResult::Unsat;
        q.disposition = SolverTelemetry::Disposition::Hit;
        telemetry_->record(q);
      }
      return *hit ? CheckResult::Sat : CheckResult::Unsat;
    }
    ++stats_.cache_misses;
  }

  std::uint64_t bitblast_us = 0;
  Lit a;
  if (telemetry_) {
    const auto t0 = std::chrono::steady_clock::now();
    a = blaster_.blastBool(assumption);
    bitblast_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  } else {
    a = blaster_.blastBool(assumption);
  }

  const std::uint64_t solve_us_before = stats_.solve_us;
  SatSolver::Result sr;
  {
    const SolveTimer timer(timing_, stats_, check_latency_);
    sr = sat_.solve({a}, max_conflicts);
  }

  CheckResult verdict;
  switch (sr) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      if (cache_) cache_->insert(key, true);
      verdict = CheckResult::Sat;
      break;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      if (cache_) cache_->insert(key, false);
      verdict = CheckResult::Unsat;
      break;
    default:
      ++stats_.unknown;
      // Budget-dependent — never cached.
      verdict = CheckResult::Unknown;
      break;
  }

  if (telemetry_) {
    SolverTelemetry::Query q;
    q.hash = key;
    q.expr_nodes = countUniqueNodes({assumption});
    q.sat_vars = static_cast<std::uint64_t>(sat_.numVars());
    q.sat_clauses = sat_.numProblemClauses();
    q.bitblast_us = bitblast_us;
    q.sat_us = stats_.solve_us - solve_us_before;
    q.verdict = verdict;
    q.disposition = cache_ ? SolverTelemetry::Disposition::Miss
                           : SolverTelemetry::Disposition::Uncached;
    if (telemetry_->record(q))
      telemetry_->dump(q, constraints_, assumption, sat_.exportDimacs({a}));
  }
  return verdict;
}

CheckResult PathSolver::checkPath(std::uint64_t max_conflicts) {
  const obs::PhaseTimer phase(profiler_, "solver");
  if (!sat_.okay()) {
    ++stats_.unsat;
    return CheckResult::Unsat;
  }
  const std::uint64_t solve_us_before = stats_.solve_us;
  SatSolver::Result sr;
  {
    const SolveTimer timer(timing_, stats_, check_latency_);
    sr = sat_.solve({}, max_conflicts);
  }
  CheckResult verdict;
  switch (sr) {
    case SatSolver::Result::Sat:
      ++stats_.sat;
      verdict = CheckResult::Sat;
      break;
    case SatSolver::Result::Unsat:
      ++stats_.unsat;
      verdict = CheckResult::Unsat;
      break;
    default:
      ++stats_.unknown;
      verdict = CheckResult::Unknown;
      break;
  }
  if (telemetry_) {
    SolverTelemetry::Query q;
    // Path-feasibility query: the key is the constraint set alone.
    q.hash = canonQueryKey(constraint_set_hash_, CanonHash{});
    q.expr_nodes = countUniqueNodes(constraints_);
    q.sat_vars = static_cast<std::uint64_t>(sat_.numVars());
    q.sat_clauses = sat_.numProblemClauses();
    q.sat_us = stats_.solve_us - solve_us_before;
    q.verdict = verdict;
    if (telemetry_->record(q))
      telemetry_->dump(q, constraints_, nullptr, sat_.exportDimacs());
  }
  return verdict;
}

std::optional<expr::Assignment> PathSolver::model(
    const expr::ExprRef& assumption) {
  const obs::PhaseTimer phase(profiler_, "solver");
  ++stats_.model_queries;
  if (!sat_.okay()) return std::nullopt;
  if (assumption && assumption->isConstant() && assumption->constantValue() == 0)
    return std::nullopt;

  // Canonical model: a fresh solver over the constraint set alone, so the
  // assignment depends only on (constraint set, assumption) — never on
  // the feasibility checks (or cache hits) that preceded it. This keeps
  // concretized values and test vectors deterministic across worker
  // counts, schedules and cache states.
  SatSolver fresh;
  BitBlaster fresh_blaster(fresh, eb_);
  for (const expr::ExprRef& c : constraints_) {
    if (c->isConstant()) {
      if (c->constantValue() == 0) return std::nullopt;
      continue;
    }
    if (!fresh_blaster.assertTrue(c)) return std::nullopt;
  }
  std::vector<Lit> assumptions;
  if (assumption && !assumption->isConstant())
    assumptions.push_back(fresh_blaster.blastBool(assumption));
  if (fresh.solve(assumptions) != SatSolver::Result::Sat) return std::nullopt;

  expr::Assignment asg;
  for (std::uint64_t id = 0; id < eb_.numVariables(); ++id) {
    const expr::ExprRef& v = eb_.variableById(id);
    asg.set(id, fresh_blaster.modelValue(v));
  }
  return asg;
}

}  // namespace rvsym::solver
