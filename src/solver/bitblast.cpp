#include "solver/bitblast.hpp"

#include <cassert>

namespace rvsym::solver {

using expr::Expr;
using expr::ExprRef;
using expr::Kind;

BitBlaster::BitBlaster(SatSolver& sat, expr::ExprBuilder& eb)
    : sat_(sat), eb_(eb) {
  const Var v = sat_.newVar();
  true_lit_ = mkLit(v);
  sat_.addClause(true_lit_);
}

Lit BitBlaster::mkAnd(Lit a, Lit b) {
  if (isFalseLit(a) || isFalseLit(b)) return litConst(false);
  if (isTrueLit(a)) return b;
  if (isTrueLit(b)) return a;
  if (a == b) return a;
  if (a == ~b) return litConst(false);
  const Lit out = mkLit(sat_.newVar());
  sat_.addClause(~out, a);
  sat_.addClause(~out, b);
  sat_.addClause(out, ~a, ~b);
  return out;
}

Lit BitBlaster::mkXor(Lit a, Lit b) {
  if (isFalseLit(a)) return b;
  if (isFalseLit(b)) return a;
  if (isTrueLit(a)) return ~b;
  if (isTrueLit(b)) return ~a;
  if (a == b) return litConst(false);
  if (a == ~b) return litConst(true);
  const Lit out = mkLit(sat_.newVar());
  sat_.addClause(~out, a, b);
  sat_.addClause(~out, ~a, ~b);
  sat_.addClause(out, ~a, b);
  sat_.addClause(out, a, ~b);
  return out;
}

Lit BitBlaster::mkMux(Lit sel, Lit t, Lit f) {
  if (isTrueLit(sel)) return t;
  if (isFalseLit(sel)) return f;
  if (t == f) return t;
  if (isTrueLit(t) && isFalseLit(f)) return sel;
  if (isFalseLit(t) && isTrueLit(f)) return ~sel;
  const Lit out = mkLit(sat_.newVar());
  sat_.addClause(~sel, ~t, out);
  sat_.addClause(~sel, t, ~out);
  sat_.addClause(sel, ~f, out);
  sat_.addClause(sel, f, ~out);
  return out;
}

Lit BitBlaster::mkAndReduce(const std::vector<Lit>& ls) {
  Lit acc = litConst(true);
  for (Lit l : ls) acc = mkAnd(acc, l);
  return acc;
}

Lit BitBlaster::mkOrReduce(const std::vector<Lit>& ls) {
  Lit acc = litConst(false);
  for (Lit l : ls) acc = mkOr(acc, l);
  return acc;
}

std::vector<Lit> BitBlaster::addCircuit(const std::vector<Lit>& a,
                                        const std::vector<Lit>& b,
                                        Lit carry_in) {
  assert(a.size() == b.size());
  std::vector<Lit> sum(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = mkXor(a[i], b[i]);
    sum[i] = mkXor(axb, carry);
    // carry_out = (a & b) | (carry & (a ^ b))
    carry = mkOr(mkAnd(a[i], b[i]), mkAnd(carry, axb));
  }
  return sum;
}

std::vector<Lit> BitBlaster::mulCircuit(const std::vector<Lit>& a,
                                        const std::vector<Lit>& b) {
  const std::size_t w = a.size();
  std::vector<Lit> acc(w, litConst(false));
  for (std::size_t i = 0; i < w; ++i) {
    if (isFalseLit(b[i])) continue;
    // partial = (a << i) & b[i]
    std::vector<Lit> partial(w, litConst(false));
    for (std::size_t j = 0; i + j < w; ++j)
      partial[i + j] = mkAnd(a[j], b[i]);
    acc = addCircuit(acc, partial, litConst(false));
  }
  return acc;
}

std::pair<std::vector<Lit>, std::vector<Lit>> BitBlaster::udivCircuit(
    const std::vector<Lit>& a, const std::vector<Lit>& b) {
  const std::size_t w = a.size();
  // Restoring division, MSB-first, with a (w+1)-bit partial remainder.
  std::vector<Lit> rem(w + 1, litConst(false));
  std::vector<Lit> bext(b);
  bext.push_back(litConst(false));
  std::vector<Lit> q(w, litConst(false));
  for (std::size_t step = 0; step < w; ++step) {
    const std::size_t i = w - 1 - step;
    // rem = (rem << 1) | a[i]
    for (std::size_t k = w; k > 0; --k) rem[k] = rem[k - 1];
    rem[0] = a[i];
    // ge = rem >= bext  <=>  !(rem < bext)
    const Lit ge = ~ultCircuit(rem, bext);
    q[i] = ge;
    // rem = ge ? rem - bext : rem
    std::vector<Lit> nb(w + 1);
    for (std::size_t k = 0; k <= w; ++k) nb[k] = ~bext[k];
    const std::vector<Lit> diff = addCircuit(rem, nb, litConst(true));
    for (std::size_t k = 0; k <= w; ++k) rem[k] = mkMux(ge, diff[k], rem[k]);
  }
  // RISC-V conventions: x / 0 = all-ones, x % 0 = x.
  const Lit bz = ~mkOrReduce(b);
  std::vector<Lit> quot(w), remainder(w);
  for (std::size_t k = 0; k < w; ++k) {
    quot[k] = mkMux(bz, litConst(true), q[k]);
    remainder[k] = mkMux(bz, a[k], rem[k]);
  }
  return {quot, remainder};
}

std::vector<Lit> BitBlaster::shiftCircuit(Kind kind, const std::vector<Lit>& a,
                                          const std::vector<Lit>& amount) {
  const std::size_t w = a.size();
  const Lit sign_bit = a[w - 1];
  const Lit fill = kind == Kind::AShr ? sign_bit : litConst(false);

  std::vector<Lit> cur(a);
  // Barrel stages for amount bits 2^k < w.
  for (std::size_t k = 0; (std::size_t{1} << k) < w && k < amount.size(); ++k) {
    const Lit sel = amount[k];
    const std::size_t shift = std::size_t{1} << k;
    std::vector<Lit> next(w);
    for (std::size_t i = 0; i < w; ++i) {
      Lit shifted;
      if (kind == Kind::Shl)
        shifted = i >= shift ? cur[i - shift] : litConst(false);
      else
        shifted = i + shift < w ? cur[i + shift] : fill;
      next[i] = mkMux(sel, shifted, cur[i]);
    }
    cur = std::move(next);
  }
  // Amounts >= w force the fill value.
  std::vector<Lit> high_bits;
  for (std::size_t k = 0; k < amount.size(); ++k)
    if ((std::size_t{1} << k) >= w) high_bits.push_back(amount[k]);
  // For non-power-of-two widths also catch in-range stage overflow:
  // amount in [w, 2^ceil(log2 w)) — compare the low stage bits against w.
  std::size_t stage_bits = 0;
  while ((std::size_t{1} << stage_bits) < w) ++stage_bits;
  if ((std::size_t{1} << stage_bits) != w && stage_bits <= amount.size()) {
    // low = amount[0..stage_bits); overflow_low = low >= w
    std::vector<Lit> low(amount.begin(),
                         amount.begin() + static_cast<long>(
                                              std::min(stage_bits, amount.size())));
    std::vector<Lit> wconst(low.size());
    for (std::size_t k = 0; k < low.size(); ++k)
      wconst[k] = litConst(((w >> k) & 1) != 0);
    high_bits.push_back(~ultCircuit(low, wconst));
  }
  const Lit overflow = mkOrReduce(high_bits);
  std::vector<Lit> out(w);
  for (std::size_t i = 0; i < w; ++i) out[i] = mkMux(overflow, fill, cur[i]);
  return out;
}

Lit BitBlaster::ultCircuit(const std::vector<Lit>& a,
                           const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  // LSB-to-MSB mux chain: lt_i = (a_i == b_i) ? lt_{i-1} : b_i.
  Lit lt = litConst(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit eq_i = ~mkXor(a[i], b[i]);
    lt = mkMux(eq_i, lt, b[i]);
  }
  return lt;
}

Lit BitBlaster::eqCircuit(const std::vector<Lit>& a,
                          const std::vector<Lit>& b) {
  assert(a.size() == b.size());
  Lit acc = litConst(true);
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = mkAnd(acc, ~mkXor(a[i], b[i]));
  return acc;
}

const std::vector<Lit>& BitBlaster::blast(const ExprRef& e) {
  auto it = cache_.find(e.get());
  if (it != cache_.end()) return it->second;
  std::vector<Lit> bits = lower(e);
  assert(bits.size() == e->width());
  pinned_.push_back(e);
  return cache_.emplace(e.get(), std::move(bits)).first->second;
}

std::vector<Lit> BitBlaster::lower(const ExprRef& e) {
  const unsigned w = e->width();
  switch (e->kind()) {
    case Kind::Constant: {
      std::vector<Lit> bits(w);
      for (unsigned i = 0; i < w; ++i)
        bits[i] = litConst(((e->constantValue() >> i) & 1) != 0);
      return bits;
    }
    case Kind::Variable: {
      std::vector<Lit> bits(w);
      for (unsigned i = 0; i < w; ++i) bits[i] = mkLit(sat_.newVar());
      return bits;
    }
    case Kind::Add:
      return addCircuit(blast(e->operand(0)), blast(e->operand(1)),
                        litConst(false));
    case Kind::Sub: {
      std::vector<Lit> nb = blast(e->operand(1));
      for (Lit& l : nb) l = ~l;
      return addCircuit(blast(e->operand(0)), nb, litConst(true));
    }
    case Kind::Neg: {
      std::vector<Lit> na = blast(e->operand(0));
      for (Lit& l : na) l = ~l;
      std::vector<Lit> zero(w, litConst(false));
      return addCircuit(na, zero, litConst(true));
    }
    case Kind::Mul:
      return mulCircuit(blast(e->operand(0)), blast(e->operand(1)));
    case Kind::UDiv:
      return udivCircuit(blast(e->operand(0)), blast(e->operand(1))).first;
    case Kind::URem:
      return udivCircuit(blast(e->operand(0)), blast(e->operand(1))).second;
    case Kind::SDiv:
    case Kind::SRem: {
      // Desugar to unsigned division with sign fixups (RISC-V semantics).
      const ExprRef a = e->operand(0);
      const ExprRef b = e->operand(1);
      const ExprRef zero = eb_.constant(0, w);
      const ExprRef a_neg = eb_.slt(a, zero);
      const ExprRef b_neg = eb_.slt(b, zero);
      const ExprRef abs_a = eb_.ite(a_neg, eb_.neg(a), a);
      const ExprRef abs_b = eb_.ite(b_neg, eb_.neg(b), b);
      ExprRef result;
      if (e->kind() == Kind::SDiv) {
        const ExprRef q = eb_.udiv(abs_a, abs_b);
        result = eb_.ite(eb_.eq(b, zero), eb_.constant(~0ULL, w),
                         eb_.ite(eb_.xorOp(a_neg, b_neg), eb_.neg(q), q));
      } else {
        const ExprRef r = eb_.urem(abs_a, abs_b);
        result =
            eb_.ite(eb_.eq(b, zero), a, eb_.ite(a_neg, eb_.neg(r), r));
      }
      return blast(result);
    }
    case Kind::And:
    case Kind::Or:
    case Kind::Xor: {
      const std::vector<Lit>& a = blast(e->operand(0));
      const std::vector<Lit>& b = blast(e->operand(1));
      std::vector<Lit> bits(w);
      for (unsigned i = 0; i < w; ++i)
        bits[i] = e->kind() == Kind::And   ? mkAnd(a[i], b[i])
                  : e->kind() == Kind::Or ? mkOr(a[i], b[i])
                                          : mkXor(a[i], b[i]);
      return bits;
    }
    case Kind::Not: {
      std::vector<Lit> bits = blast(e->operand(0));
      for (Lit& l : bits) l = ~l;
      return bits;
    }
    case Kind::Shl:
    case Kind::LShr:
    case Kind::AShr:
      return shiftCircuit(e->kind(), blast(e->operand(0)),
                          blast(e->operand(1)));
    case Kind::Eq:
      return {eqCircuit(blast(e->operand(0)), blast(e->operand(1)))};
    case Kind::Ult:
      return {ultCircuit(blast(e->operand(0)), blast(e->operand(1)))};
    case Kind::Ule:
      return {~ultCircuit(blast(e->operand(1)), blast(e->operand(0)))};
    case Kind::Slt: {
      // slt(a, b) == ult(a ^ MSB, b ^ MSB)
      std::vector<Lit> a = blast(e->operand(0));
      std::vector<Lit> b = blast(e->operand(1));
      a.back() = ~a.back();
      b.back() = ~b.back();
      return {ultCircuit(a, b)};
    }
    case Kind::Sle: {
      std::vector<Lit> a = blast(e->operand(0));
      std::vector<Lit> b = blast(e->operand(1));
      a.back() = ~a.back();
      b.back() = ~b.back();
      return {~ultCircuit(b, a)};
    }
    case Kind::Concat: {
      const std::vector<Lit>& hi = blast(e->operand(0));
      const std::vector<Lit>& lo = blast(e->operand(1));
      std::vector<Lit> bits(lo);
      bits.insert(bits.end(), hi.begin(), hi.end());
      return bits;
    }
    case Kind::Extract: {
      const std::vector<Lit>& inner = blast(e->operand(0));
      return {inner.begin() + e->extractLow(),
              inner.begin() + e->extractLow() + w};
    }
    case Kind::ZExt: {
      std::vector<Lit> bits = blast(e->operand(0));
      bits.resize(w, litConst(false));
      return bits;
    }
    case Kind::SExt: {
      std::vector<Lit> bits = blast(e->operand(0));
      const Lit s = bits.back();
      bits.resize(w, s);
      return bits;
    }
    case Kind::Ite: {
      const Lit sel = blastBool(e->operand(0));
      const std::vector<Lit>& t = blast(e->operand(1));
      const std::vector<Lit>& f = blast(e->operand(2));
      std::vector<Lit> bits(w);
      for (unsigned i = 0; i < w; ++i) bits[i] = mkMux(sel, t[i], f[i]);
      return bits;
    }
  }
  assert(false && "unreachable");
  return {};
}

Lit BitBlaster::blastBool(const ExprRef& e) {
  assert(e->width() == 1);
  return blast(e)[0];
}

bool BitBlaster::assertTrue(const ExprRef& e) {
  return sat_.addClause(blastBool(e));
}

std::uint64_t BitBlaster::modelValue(const expr::ExprRef& e) {
  const std::vector<Lit>& bits = blast(e);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bool bit;
    if (isTrueLit(bits[i]))
      bit = true;
    else if (isFalseLit(bits[i]))
      bit = false;
    else
      bit = sat_.modelValueBool(bits[i]);
    if (bit) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace rvsym::solver
