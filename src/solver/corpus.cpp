#include "solver/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "expr/serialize.hpp"

namespace rvsym::solver {

namespace {

constexpr std::string_view kMagic = "rvsym-query-v1";

std::optional<std::uint64_t> parseU64(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

const char* verdictName(CheckResult v) {
  switch (v) {
    case CheckResult::Sat: return "sat";
    case CheckResult::Unsat: return "unsat";
    case CheckResult::Unknown: return "unknown";
  }
  return "unknown";
}

std::optional<CheckResult> verdictByName(std::string_view s) {
  if (s == "sat") return CheckResult::Sat;
  if (s == "unsat") return CheckResult::Unsat;
  if (s == "unknown") return CheckResult::Unknown;
  return std::nullopt;
}

std::uint64_t countUniqueNodes(const std::vector<expr::ExprRef>& roots) {
  std::unordered_set<const expr::Expr*> seen;
  std::vector<const expr::Expr*> stack;
  for (const expr::ExprRef& r : roots)
    if (r) stack.push_back(r.get());
  while (!stack.empty()) {
    const expr::Expr* e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    for (int i = 0; i < e->numOperands(); ++i)
      stack.push_back(e->operand(i).get());
  }
  return seen.size();
}

std::string formatQuery(const CorpusQuery& q) {
  std::vector<expr::ExprRef> roots = q.constraints;
  if (q.assumption) roots.push_back(q.assumption);
  const std::optional<std::string> body = expr::serializeNodes(roots);
  if (!body) return {};

  std::string out;
  out += kMagic;
  out += '\n';
  out += "verdict ";
  out += verdictName(q.verdict);
  out += '\n';
  char buf[64];
  std::snprintf(buf, sizeof buf, "sat_us %llu\n",
                static_cast<unsigned long long>(q.sat_us));
  out += buf;
  std::snprintf(buf, sizeof buf, "bitblast_us %llu\n",
                static_cast<unsigned long long>(q.bitblast_us));
  out += buf;
  std::snprintf(buf, sizeof buf, "nodes %llu\n",
                static_cast<unsigned long long>(countUniqueNodes(roots)));
  out += buf;
  std::snprintf(buf, sizeof buf, "constraints %zu\n", q.constraints.size());
  out += buf;
  std::snprintf(buf, sizeof buf, "assume %d\n", q.assumption ? 1 : 0);
  out += buf;
  out += '\n';
  out += *body;
  return out;
}

std::string formatQueryBounded(const std::vector<expr::ExprRef>& constraints,
                               const expr::ExprRef& assumption,
                               std::size_t max_body_bytes) {
  std::vector<expr::ExprRef> roots = constraints;
  if (assumption) roots.push_back(assumption);
  const std::optional<expr::BoundedNodes> body =
      expr::serializeNodesBounded(roots, max_body_bytes);
  if (!body) return {};

  std::string out;
  out.reserve(body->text.size() + 160);
  out += kMagic;
  out += '\n';
  out += "verdict unknown\n";
  out += "sat_us 0\n";
  out += "bitblast_us 0\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "nodes %llu\n",
                static_cast<unsigned long long>(body->nodes));
  out += buf;
  std::snprintf(buf, sizeof buf, "constraints %zu\n", constraints.size());
  out += buf;
  std::snprintf(buf, sizeof buf, "assume %d\n", assumption ? 1 : 0);
  out += buf;
  out += '\n';
  out += body->text;
  if (body->truncated) out += "; truncated\n";
  return out;
}

std::optional<CorpusQuery> parseQuery(expr::ExprBuilder& eb,
                                      std::string_view text,
                                      std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<CorpusQuery> {
    if (error) *error = why;
    return std::nullopt;
  };

  // Header: "key value" lines up to the first blank line.
  CorpusQuery q;
  std::size_t num_constraints = 0;
  bool has_assumption = false;
  bool saw_magic = false;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos)
      return fail("truncated header (no blank-line separator)");
    const std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) break;  // header/body separator
    if (!saw_magic) {
      if (line != kMagic)
        return fail("bad magic (want '" + std::string(kMagic) + "')");
      saw_magic = true;
      continue;
    }
    const std::size_t sp = line.find(' ');
    if (sp == std::string_view::npos) return fail("malformed header line");
    const std::string_view key = line.substr(0, sp);
    const std::string_view val = line.substr(sp + 1);
    if (key == "verdict") {
      const auto v = verdictByName(val);
      if (!v) return fail("unknown verdict");
      q.verdict = *v;
    } else if (key == "sat_us") {
      q.sat_us = parseU64(val).value_or(0);
    } else if (key == "bitblast_us") {
      q.bitblast_us = parseU64(val).value_or(0);
    } else if (key == "nodes") {
      q.nodes = parseU64(val).value_or(0);
    } else if (key == "constraints") {
      const auto n = parseU64(val);
      if (!n) return fail("bad constraints count");
      num_constraints = static_cast<std::size_t>(*n);
    } else if (key == "assume") {
      has_assumption = val == "1";
    }
    // Unknown keys are skipped: older readers tolerate newer dumps.
  }
  if (!saw_magic) return fail("empty document");

  std::string parse_error;
  const auto roots = expr::parseNodes(eb, text.substr(start), &parse_error);
  if (!roots) return fail("node parse failed: " + parse_error);
  const std::size_t expected = num_constraints + (has_assumption ? 1 : 0);
  if (roots->size() != expected)
    return fail("root count mismatch (header promises " +
                std::to_string(expected) + ", body has " +
                std::to_string(roots->size()) + ")");
  q.constraints.assign(roots->begin(),
                       roots->begin() + static_cast<long>(num_constraints));
  if (has_assumption) q.assumption = roots->back();
  return q;
}

std::optional<CorpusQuery> loadQueryFile(expr::ExprBuilder& eb,
                                         const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  return parseQuery(eb, text, error);
}

CheckResult replayQuery(expr::ExprBuilder& eb, const CorpusQuery& q,
                        std::uint64_t* solve_us) {
  PathSolver ps(eb);
  ps.enableTiming(solve_us != nullptr);
  if (solve_us) *solve_us = 0;
  for (const expr::ExprRef& c : q.constraints) {
    if (!ps.addConstraint(c)) return CheckResult::Unsat;
  }
  const CheckResult r = q.assumption ? ps.check(q.assumption) : ps.checkPath();
  if (solve_us) *solve_us = ps.stats().solve_us;
  return r;
}

ReplayOutcome replayQueryOpt(expr::ExprBuilder& eb, const CorpusQuery& q,
                             const ReplayOptions& opts) {
  ReplayOutcome out;
  PathSolver ps(eb);
  ps.setOptions(opts.solver_opt);
  if (opts.query_cache || opts.hasher)
    ps.attachCache(opts.query_cache, opts.hasher);
  if (opts.cex_cache) ps.attachCexCache(opts.cex_cache);
  ps.enableTiming(true);
  for (const expr::ExprRef& c : q.constraints) {
    if (!ps.addConstraint(c)) {
      out.verdict = CheckResult::Unsat;
      out.via = "const";
      return out;
    }
  }
  out.verdict = q.assumption ? ps.check(q.assumption) : ps.checkPath();
  const QueryStats& s = ps.stats();
  out.solve_us = s.solve_us;
  if (s.cache_hits) out.via = "exact";
  else if (s.cex_model_hits) out.via = "cex-model";
  else if (s.cex_core_hits) out.via = "cex-core";
  else if (s.rewrite_decided) out.via = "rewrite";
  else if (s.sliced_solves) out.via = "slice";
  else if (s.sat_solves) out.via = "solve";
  else out.via = "const";
  return out;
}

std::vector<expr::ExprRef> ddminConstraints(expr::ExprBuilder& eb,
                                            const CorpusQuery& q,
                                            std::uint64_t* replays) {
  const auto holds = [&](const std::vector<expr::ExprRef>& subset) {
    if (replays) ++*replays;
    CorpusQuery trial = q;
    trial.constraints = subset;
    return replayQuery(eb, trial) == q.verdict;
  };

  if (holds({})) return {};
  std::vector<expr::ExprRef> cur = q.constraints;
  std::size_t n = std::min<std::size_t>(2, cur.size());
  while (cur.size() >= 2) {
    const std::size_t chunk = (cur.size() + n - 1) / n;
    bool reduced = false;
    // Reduce to one chunk.
    for (std::size_t i = 0; i * chunk < cur.size() && !reduced; ++i) {
      const std::size_t lo = i * chunk;
      const std::size_t hi = std::min(lo + chunk, cur.size());
      if (hi - lo == cur.size()) continue;
      std::vector<expr::ExprRef> subset(cur.begin() + static_cast<long>(lo),
                                        cur.begin() + static_cast<long>(hi));
      if (holds(subset)) {
        cur = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    // Reduce to a complement.
    for (std::size_t i = 0; i * chunk < cur.size() && !reduced; ++i) {
      const std::size_t lo = i * chunk;
      const std::size_t hi = std::min(lo + chunk, cur.size());
      std::vector<expr::ExprRef> complement;
      complement.reserve(cur.size() - (hi - lo));
      complement.insert(complement.end(), cur.begin(),
                        cur.begin() + static_cast<long>(lo));
      complement.insert(complement.end(),
                        cur.begin() + static_cast<long>(hi), cur.end());
      if (complement.size() < cur.size() && holds(complement)) {
        cur = std::move(complement);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (n >= cur.size()) break;  // granularity maxed out: 1-minimal
      n = std::min(cur.size(), n * 2);
    }
  }
  return cur;
}

}  // namespace rvsym::solver
