// Tseitin bit-blaster: lowers bit-vector expressions onto a SatSolver.
//
// Each expression node is lowered once per blaster (DAG-aware cache) into a
// little-endian vector of SAT literals. Gate construction short-circuits on
// constant inputs, so concretely-determined subcircuits cost nothing.
//
// Signed division/remainder are desugared at the expression level (using
// the owning ExprBuilder) into unsigned division plus sign fixups following
// the RISC-V M conventions, which keeps the circuit zoo small and testable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/builder.hpp"
#include "expr/expr.hpp"
#include "solver/sat.hpp"

namespace rvsym::solver {

class BitBlaster {
 public:
  BitBlaster(SatSolver& sat, expr::ExprBuilder& eb);

  /// Lowers `e`; returns its literals, LSB first.
  const std::vector<Lit>& blast(const expr::ExprRef& e);

  /// Lowers a width-1 expression to a single literal.
  Lit blastBool(const expr::ExprRef& e);

  /// Asserts that the width-1 expression `e` holds (unit clause).
  /// Returns false if the solver became trivially unsat.
  bool assertTrue(const expr::ExprRef& e);

  /// Reads the value of `e` back from the solver model (after Sat).
  std::uint64_t modelValue(const expr::ExprRef& e);

  /// The literal that is constant true in this blaster.
  Lit trueLit() const { return true_lit_; }

  std::size_t cacheSize() const { return cache_.size(); }

 private:
  // Gate constructors with constant short-circuiting.
  Lit litConst(bool v) const { return v ? true_lit_ : ~true_lit_; }
  bool isTrueLit(Lit l) const { return l == true_lit_; }
  bool isFalseLit(Lit l) const { return l == ~true_lit_; }
  Lit mkAnd(Lit a, Lit b);
  Lit mkOr(Lit a, Lit b) { return ~mkAnd(~a, ~b); }
  Lit mkXor(Lit a, Lit b);
  Lit mkMux(Lit sel, Lit t, Lit f);
  Lit mkAndReduce(const std::vector<Lit>& ls);
  Lit mkOrReduce(const std::vector<Lit>& ls);

  // Word-level circuits (all vectors LSB first).
  std::vector<Lit> addCircuit(const std::vector<Lit>& a,
                              const std::vector<Lit>& b, Lit carry_in);
  std::vector<Lit> mulCircuit(const std::vector<Lit>& a,
                              const std::vector<Lit>& b);
  /// Restoring divider; returns {quotient, remainder} with the RISC-V
  /// x/0 conventions applied.
  std::pair<std::vector<Lit>, std::vector<Lit>> udivCircuit(
      const std::vector<Lit>& a, const std::vector<Lit>& b);
  std::vector<Lit> shiftCircuit(expr::Kind kind, const std::vector<Lit>& a,
                                const std::vector<Lit>& amount);
  Lit ultCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b);
  Lit eqCircuit(const std::vector<Lit>& a, const std::vector<Lit>& b);

  std::vector<Lit> lower(const expr::ExprRef& e);

  SatSolver& sat_;
  expr::ExprBuilder& eb_;
  Lit true_lit_;
  std::unordered_map<const expr::Expr*, std::vector<Lit>> cache_;
  // Keeps blasted expressions alive so cache keys stay valid.
  std::vector<expr::ExprRef> pinned_;
};

}  // namespace rvsym::solver
