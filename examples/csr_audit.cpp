// CSR-space audit — the Table I §V-A scenario the paper's intro
// motivates: "due to the large degree of different valid implementation
// choices that the RISC-V ISA offers, it is important to have effective
// methods available that detect mismatches in order to support the
// designer in providing an exactly matching configuration of ISS and
// RTL core."
//
// This example constrains instruction generation to the SYSTEM opcode
// (klee_assume on the symbolic instruction word) and explores the CSR
// address space at instruction limits 1 and 2, printing the classified
// divergences between the MicroRV32 core model and the VP reference ISS.
#include <cstdio>
#include <set>

#include "core/session.hpp"
#include "expr/builder.hpp"

int main() {
  using namespace rvsym;

  std::printf("CSR-space audit: MicroRV32 model vs RISC-V VP reference ISS\n");
  std::printf("scenario assume: opcode == SYSTEM (0x73)\n\n");

  std::vector<core::Finding> all;
  std::set<std::string> seen;

  for (unsigned limit : {1u, 2u}) {
    expr::ExprBuilder eb;
    core::SessionOptions options;
    options.cosim.instr_limit = limit;
    options.cosim.instr_constraint =
        core::CoSimulation::onlySystemInstructions();
    options.engine.max_paths = limit == 1 ? 1500 : 4000;
    options.engine.max_seconds = 120;
    options.engine.max_stored_paths = 1;

    core::VerificationSession session(eb, options);
    const core::SessionReport report = session.run();
    std::printf("instruction limit %u: %llu paths explored, %llu mismatch "
                "paths, %.2fs\n",
                limit,
                static_cast<unsigned long long>(report.engine.totalPaths()),
                static_cast<unsigned long long>(report.engine.error_paths),
                report.engine.seconds);
    for (const core::Finding& f : report.findings)
      if (seen.insert(f.key()).second) all.push_back(f);
  }

  std::printf("\n%s\n", core::renderFindingsTable(all).c_str());

  int errors = 0, iss_errors = 0, mismatches = 0;
  for (const core::Finding& f : all) {
    if (f.r_class == "E") ++errors;
    if (f.r_class == "E*") ++iss_errors;
    if (f.r_class == "M") ++mismatches;
  }
  std::printf("summary: %d RTL errors (E), %d ISS errors (E*), "
              "%d implementation mismatches (M)\n",
              errors, iss_errors, mismatches);
  return all.empty() ? 1 : 0;
}
