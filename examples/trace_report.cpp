// Offline trace analysis end to end, entirely in-process: run a Table I
// style scenario (SYSTEM instructions against the buggy-by-default CSR
// file) with the JSONL lifecycle trace captured in memory, then feed
// the trace to the analysis layer — reconstruct the exploration tree,
// attribute solver/RTL/ISS time, rebuild the decoder-space coverage
// map, and check jobs=1 vs jobs=2 determinism with the run differ.
//
// The same flow works across processes via files:
//
//   rvsym-verify --scenario system --limit 1 --trace-out run/trace.jsonl
//   rvsym-report tree run/trace.jsonl
//   rvsym-report coverage run/trace.jsonl --html coverage.html
//   rvsym-report diff runA/ runB/
#include <cstdio>
#include <memory>

#include "core/coverage.hpp"
#include "core/session.hpp"
#include "obs/analyze/coverage_map.hpp"
#include "obs/analyze/diff.hpp"
#include "obs/analyze/path_tree.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace rvsym;
  namespace analyze = rvsym::obs::analyze;

  // --- 1. Run the scenario twice (jobs=1, jobs=2), tracing both. ----------
  auto runScenario = [](unsigned jobs, obs::BufferTraceSink& sink) {
    expr::ExprBuilder eb;
    core::SessionOptions opts;
    // Default RtlConfig = the authentic MicroRV32 with its Table I
    // deviations, so mismatches are genuinely found.
    opts.cosim.instr_limit = 1;
    opts.cosim.instr_constraint =
        core::CoSimulation::onlySystemInstructions();
    opts.engine.max_paths = 120;
    opts.engine.jobs = jobs;
    opts.engine.trace = &sink;
    core::VerificationSession session(eb, opts);
    return session.run();
  };

  obs::BufferTraceSink trace1, trace2;
  const core::SessionReport report = runScenario(1, trace1);
  runScenario(2, trace2);
  std::printf("engine: %llu paths, %llu mismatches found\n",
              static_cast<unsigned long long>(report.engine.totalPaths()),
              static_cast<unsigned long long>(report.engine.error_paths));

  // --- 2. Reconstruct the exploration tree from the trace alone. ----------
  std::string err;
  std::optional<analyze::PathTree> tree =
      analyze::PathTree::fromTraceLines(trace1.lines(), &err);
  if (!tree) {
    std::fprintf(stderr, "tree reconstruction failed: %s\n", err.c_str());
    return 1;
  }
  // Round trip: the tree's verdict counts must equal the engine's.
  const analyze::TreeCounts counts = tree->counts();
  if (counts.error != report.engine.error_paths ||
      counts.total() != report.engine.totalPaths()) {
    std::fprintf(stderr, "round-trip mismatch: tree disagrees with engine\n");
    return 1;
  }
  std::printf("\n%s", tree->renderReport(3).c_str());

  // --- 3. Coverage map from the embedded test vectors and tags. -----------
  const core::CoverageCollector cov = analyze::coverageFromTree(*tree);
  std::printf("\n%s", cov.summary().c_str());

  // --- 4. Determinism check: jobs=1 vs jobs=2 must be identical. ----------
  std::optional<analyze::PathTree> tree2 =
      analyze::PathTree::fromTraceLines(trace2.lines(), &err);
  if (!tree2) {
    std::fprintf(stderr, "tree reconstruction (jobs=2) failed: %s\n",
                 err.c_str());
    return 1;
  }
  analyze::RunArtifacts a, b;
  a.tree = std::move(*tree);
  a.coverage = cov;
  b.tree = std::move(*tree2);
  b.coverage = analyze::coverageFromTree(b.tree);
  const analyze::DiffResult diff = analyze::diffRuns(a, b);
  std::printf("\njobs=1 vs jobs=2: %s", diff.render().c_str());
  return diff.identical() ? 0 : 1;
}
