// Quickstart: symbolically verify the (authentically buggy) MicroRV32
// core model against the RISC-V VP reference ISS.
//
// One fully symbolic instruction is executed on both processors from
// symbolic registers/memory; the engine explores every decode/behaviour
// path and the voter reports each functional mismatch with a concrete
// reproducing test vector.
#include <cstdio>

#include "core/session.hpp"
#include "expr/builder.hpp"
#include "rv32/instr.hpp"

int main() {
  using namespace rvsym;

  expr::ExprBuilder eb;

  core::SessionOptions options;
  options.cosim.instr_limit = 1;
  options.cosim.num_symbolic_regs = 2;
  options.engine.max_paths = 400;
  options.engine.max_seconds = 60;

  std::printf("rvsym quickstart: exploring one symbolic instruction...\n\n");
  core::VerificationSession session(eb, options);
  const core::SessionReport report = session.run();

  std::printf("%s\n", core::renderFindingsTable(report.findings).c_str());
  std::printf("paths: %llu completed, %llu partial (%llu mismatch paths)\n",
              static_cast<unsigned long long>(report.engine.completed_paths),
              static_cast<unsigned long long>(report.engine.partialPaths()),
              static_cast<unsigned long long>(report.engine.error_paths));
  std::printf("instructions: %llu, time: %.2fs, test vectors: %llu\n",
              static_cast<unsigned long long>(report.engine.instructions),
              report.engine.seconds,
              static_cast<unsigned long long>(report.engine.test_vectors));

  // Show one concrete reproducer.
  if (const symex::PathRecord* err = report.engine.firstError()) {
    std::printf("\nfirst mismatch: %s\n", err->message.c_str());
    if (err->has_test) {
      for (const symex::TestValue& v : err->test.values) {
        if (v.name.rfind("instr@", 0) == 0)
          std::printf("  %s = 0x%08llx   %s\n", v.name.c_str(),
                      static_cast<unsigned long long>(v.value),
                      rv32::disassemble(static_cast<std::uint32_t>(v.value))
                          .c_str());
        else if (v.name.rfind("reg_", 0) == 0)
          std::printf("  %s = 0x%08llx\n", v.name.c_str(),
                      static_cast<unsigned long long>(v.value));
      }
    }
  }
  return 0;
}
