// Test-vector replay — the KLEE "ktest" workflow (the right-hand output
// of Fig. 1): a bounded symbolic exploration of the buggy core emits one
// concrete test vector per path; this example then REPLAYS each
// mismatch vector through a fresh co-simulation with the instruction
// words and register inputs pinned to the recorded values, confirming
// every mismatch reproduces deterministically.
#include <cstdio>
#include <vector>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "rv32/instr.hpp"
#include "symex/engine.hpp"

namespace {

using namespace rvsym;

/// Pins instruction-memory words to the recorded vector.
core::InstrConstraint pinInstructions(const symex::TestVector& tv) {
  return [&tv](symex::ExecState& st, const expr::ExprRef& instr) {
    if (auto v = tv.lookup(instr->name()))
      st.assume(st.builder().eqConst(instr, *v));
  };
}

/// Pins the symbolic register inputs to the recorded vector.
std::function<void(symex::ExecState&)> pinRegisters(
    const symex::TestVector& tv, unsigned num_symbolic_regs) {
  return [&tv, num_symbolic_regs](symex::ExecState& st) {
    expr::ExprBuilder& eb = st.builder();
    for (unsigned i = 1; i <= num_symbolic_regs; ++i) {
      const std::string name = "reg_x" + std::to_string(i);
      if (auto v = tv.lookup(name))
        st.assume(eb.eqConst(eb.variable(name, 32), *v));
    }
  };
}

}  // namespace

int main() {
  std::printf("phase 1: symbolic exploration of the authentic MicroRV32 "
              "model (test-vector generation)\n");

  expr::ExprBuilder eb;
  core::CosimConfig cfg;  // authentic buggy RTL vs authentic VP ISS
  cfg.instr_limit = 1;

  symex::EngineOptions opts;
  opts.stop_on_error = false;
  opts.max_paths = 250;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());

  std::vector<const symex::PathRecord*> mismatches;
  for (const symex::PathRecord& p : report.paths)
    if (p.end == symex::PathEnd::Error && p.has_test)
      mismatches.push_back(&p);

  std::printf("  %llu paths, %zu mismatch vectors emitted\n\n",
              static_cast<unsigned long long>(report.totalPaths()),
              mismatches.size());

  std::printf("phase 2: replaying every mismatch vector (pinned inputs)\n");
  unsigned reproduced = 0;
  unsigned shown = 0;
  for (const symex::PathRecord* p : mismatches) {
    core::CosimConfig replay_cfg;  // same authentic configuration
    replay_cfg.instr_limit = 1;
    replay_cfg.instr_constraint = pinInstructions(p->test);
    replay_cfg.post_init_hook = pinRegisters(p->test, replay_cfg.num_symbolic_regs);

    symex::EngineOptions replay_opts;
    replay_opts.stop_on_error = true;
    replay_opts.max_paths = 64;  // pinned inputs leave almost nothing to fork
    replay_opts.collect_test_vectors = false;
    core::CoSimulation replay(eb, replay_cfg);
    symex::Engine replay_engine(eb, replay_opts);
    const symex::EngineReport rr = replay_engine.run(replay.program());

    const bool ok = rr.error_paths > 0;
    reproduced += ok ? 1 : 0;
    if (shown < 5) {
      const auto word = p->test.lookup(
          core::SymbolicInstrMemory::variableName(0x80000000));
      std::printf("  %-40s -> %s\n",
                  word ? rv32::disassemble(static_cast<std::uint32_t>(*word))
                             .c_str()
                       : "?",
                  ok ? "reproduced" : "NOT reproduced");
      ++shown;
    }
  }
  if (mismatches.size() > shown)
    std::printf("  ... and %zu more\n", mismatches.size() - shown);

  std::printf("\nreplay result: %u / %zu mismatch vectors reproduced\n",
              reproduced, mismatches.size());
  return reproduced == mismatches.size() && !mismatches.empty() ? 0 : 1;
}
