// Classic (concrete) lockstep co-simulation: run a real RV32I program —
// an iterative Fibonacci with loads/stores — on the fixed RTL core and
// the reference ISS simultaneously, compare every retirement through the
// voter, and print an RVFI-style trace. This is the conventional
// co-simulation use of the testbench, with all values concrete (the
// symbolic machinery folds away).
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "core/voter.hpp"
#include "expr/builder.hpp"
#include "iss/iss.hpp"
#include "rtl/core.hpp"
#include "rtl/vcd.hpp"
#include "rv32/encode.hpp"
#include "rv32/instr.hpp"

namespace {

using namespace rvsym;
using namespace rvsym::rv32;

constexpr std::uint32_t kBase = 0x80000000;

/// fib(10) via a loop, storing each value to memory at 0x1000 + 4*i.
std::vector<std::uint32_t> fibonacciProgram() {
  return {
      enc::addi(1, 0, 0),       // x1 = fib(0) = 0
      enc::addi(2, 0, 1),       // x2 = fib(1) = 1
      enc::addi(3, 0, 10),      // x3 = remaining iterations
      enc::lui(4, 0x1000),      // x4 = 0x1000 (buffer base)
      // loop:
      enc::sw(1, 4, 0),         // mem[x4] = x1 (= fib(i))
      enc::add(5, 1, 2),        // x5 = x1 + x2
      enc::addi(1, 2, 0),       // x1 = x2
      enc::addi(2, 5, 0),       // x2 = x5
      enc::addi(4, 4, 4),       // x4 += 4
      enc::addi(3, 3, -1),      // --x3
      enc::bne(3, 0, -24),      // loop while x3 != 0
      enc::lw(6, 4, -4),        // x6 = last stored value (= fib(9))
      enc::ebreak(),            // stop
  };
}

}  // namespace

int main() {
  expr::ExprBuilder eb;
  symex::ExecState st(eb, {}, {});

  const std::vector<std::uint32_t> program = fibonacciProgram();

  // Concrete instruction source for both processors.
  struct ProgMem final : iss::InstrSourceIf {
    const std::vector<std::uint32_t>& words;
    expr::ExprBuilder& eb;
    ProgMem(const std::vector<std::uint32_t>& w, expr::ExprBuilder& b)
        : words(w), eb(b) {}
    expr::ExprRef fetch(symex::ExecState&, std::uint32_t addr) override {
      const std::uint32_t index = (addr - kBase) / 4;
      const std::uint32_t word =
          addr >= kBase && index < words.size() ? words[index] : 0;
      return eb.constant(word, 32);
    }
  } imem(program, eb);

  core::InitialImage image;
  core::SymbolicDataMemory rtl_mem(image);
  core::SymbolicDataMemory iss_mem(image);
  // Concrete zero-initialised data buffer (so loads are concrete).
  for (std::uint32_t a = 0x1000; a < 0x1080; ++a) {
    rtl_mem.setByte(a, eb.constant(0, 8));
    iss_mem.setByte(a, eb.constant(0, 8));
  }

  rtl::MicroRv32Core core(eb, rtl::fixedRtlConfig());
  iss::IssConfig iss_cfg;
  iss_cfg.csr = iss::CsrConfig::specCorrect();
  iss::Iss refmodel(eb, imem, iss_mem, iss_cfg);
  core::Voter voter;

  // Dump a GTKWave-viewable waveform of the whole run.
  std::ofstream vcd_file("concrete_trace.vcd");
  rtl::VcdWriter vcd(vcd_file, core);

  std::printf("lockstep co-simulation of fib(10) — RVFI trace\n\n");
  std::printf("%-10s %-28s %-12s %s\n", "pc", "instruction", "rd", "next pc");
  std::printf("%s\n", std::string(64, '-').c_str());

  unsigned retired = 0;
  bool done = false;
  for (unsigned cycle = 0; cycle < 4000 && !done; ++cycle) {
    core.tick(st);
    if (core.ibus.fetch_enable && !core.ibus.instruction_ready) {
      core.ibus.instruction = imem.fetch(st, core.ibus.address);
      core.ibus.instruction_ready = true;
    } else if (!core.ibus.fetch_enable) {
      core.ibus.instruction_ready = false;
    }
    if (core.dbus.enable && !core.dbus.data_ready) {
      if (core.dbus.write)
        rtl_mem.storeStrobed(st, core.dbus.address, core.dbus.strobe,
                             core.dbus.wdata);
      else
        core.dbus.rdata =
            rtl_mem.loadStrobed(st, core.dbus.address, core.dbus.strobe);
      core.dbus.data_ready = true;
    } else if (!core.dbus.enable) {
      core.dbus.data_ready = false;
    }

    if (core.rvfi.valid) {
      const iss::RetireInfo& r = core.rvfi.info;
      const iss::RetireInfo iss_r = refmodel.step(st);
      if (auto m = voter.compare(st, r, iss_r)) {
        std::printf("VOTER MISMATCH: %s\n", core::Voter::describe(*m).c_str());
        return 1;
      }
      ++retired;
      const auto pc = static_cast<std::uint32_t>(r.pc->constantValue());
      const auto instr = static_cast<std::uint32_t>(r.instr->constantValue());
      char rd_buf[24] = "-";
      if (r.rd_index && r.rd_index->isConstant() && r.rd_value->isConstant())
        std::snprintf(rd_buf, sizeof rd_buf, "x%llu=0x%llx",
                      static_cast<unsigned long long>(
                          r.rd_index->constantValue()),
                      static_cast<unsigned long long>(
                          r.rd_value->constantValue()));
      std::printf("%08x   %-28s %-12s %08llx%s\n", pc,
                  rv32::disassemble(instr).c_str(), rd_buf,
                  static_cast<unsigned long long>(
                      r.next_pc->constantValue()),
                  r.trap ? "  TRAP" : "");
      if (r.trap) done = true;  // ebreak ends the run
    }
    vcd.sample();
  }

  // fib(10) == 55 in x1, fib(9) == 34 loaded back into x6 — in both models.
  const bool rtl_ok = core.regs().get(1)->isConstantValue(55) &&
                      core.regs().get(6)->isConstantValue(34);
  const bool iss_ok = refmodel.regs().get(1)->isConstantValue(55) &&
                      refmodel.regs().get(6)->isConstantValue(34);
  std::printf("\nretired %u instructions in lockstep, 0 mismatches\n",
              retired);
  std::printf("fib(10)=55 and fib(9)=34 read back: rtl %s, iss %s\n",
              rtl_ok ? "ok" : "WRONG", iss_ok ? "ok" : "WRONG");
  std::printf("waveform written to concrete_trace.vcd\n");
  return rtl_ok && iss_ok ? 0 : 1;
}
