// Error-injection hunt — the Table II §V-B workflow on one chosen
// mutant: inject it into the (otherwise fixed) RTL core, judge it with
// the same mut::judgeMutant path rvsym-mutate campaigns use, and print
// the concrete reproducing stimulus KLEE-style (instruction words,
// register values, memory bytes).
//
// Usage: error_injection [E0..E9 | mutant id]
//   error_injection E7                 # paper error (LBU endianness flip)
//   error_injection dec:jal:b2         # any point of the mutation space
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "fault/faults.hpp"
#include "mut/campaign.hpp"
#include "rv32/instr.hpp"

int main(int argc, char** argv) {
  using namespace rvsym;

  const char* id = argc > 1 ? argv[1] : "E7";
  mut::Mutant mutant;
  try {
    // Paper ids (E0..E9, X0..X1) resolve through the fault registry;
    // anything else is parsed as a mutation-space id.
    mutant = fault::errorById(id).mutant();
  } catch (const std::out_of_range&) {
    try {
      mutant = mut::mutantById(id);
    } catch (const std::out_of_range&) {
      std::fprintf(stderr,
                   "unknown mutant '%s' (use E0..E9 or a mutation-space id "
                   "from `rvsym-mutate list`)\n",
                   id);
      return 2;
    }
  }

  std::printf("hunting injected mutant %s: %s\n\n", mutant.id().c_str(),
              mutant.description().c_str());

  mut::CampaignOptions opts;
  opts.max_instr_limit = 2;
  opts.max_seconds_per_hunt = 120;
  const mut::MutantResult r = mut::judgeMutant(mutant, opts, nullptr, {});

  std::printf("explored %llu paths (%llu partial), %llu instructions, "
              "%.3fs\n",
              static_cast<unsigned long long>(r.paths + r.partial_paths),
              static_cast<unsigned long long>(r.partial_paths),
              static_cast<unsigned long long>(r.instructions), r.seconds);

  if (r.verdict == mut::Verdict::Equivalent) {
    std::printf("mutant is provably equivalent to the unmutated decoder — "
                "nothing to hunt\n");
    return 0;
  }
  if (r.verdict != mut::Verdict::Killed) {
    std::printf("error NOT found within budget\n");
    return 1;
  }

  std::printf("\n%s\n\nreproducing test vector:\n", r.kill_message.c_str());
  if (r.has_kill_test) {
    for (const symex::TestValue& v : r.kill_test.values) {
      if (v.name.rfind("instr@", 0) == 0) {
        std::printf("  %-16s = 0x%08llx   %s\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value),
                    rv32::disassemble(static_cast<std::uint32_t>(v.value))
                        .c_str());
      } else if (v.name.rfind("reg_", 0) == 0) {
        std::printf("  %-16s = 0x%08llx\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value));
      } else if (v.name.rfind("mem@", 0) == 0 && v.value != 0) {
        std::printf("  %-16s = 0x%02llx\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value));
      }
    }
  }
  std::printf("\nverdict: %s killed at instruction limit %u.\n",
              mutant.id().c_str(), r.kill_instr_limit);
  return 0;
}
