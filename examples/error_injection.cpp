// Error-injection hunt — the Table II §V-B workflow on one chosen
// fault: inject it into the (otherwise fixed) RTL core, run the
// symbolic co-simulation until the voter finds the divergence, and
// print the concrete reproducing stimulus KLEE-style (instruction
// words, register values, memory bytes).
//
// Usage: error_injection [E0..E9]   (default: E7, the LBU endianness flip)
#include <cstdio>
#include <cstring>

#include "core/cosim.hpp"
#include "core/symmem.hpp"
#include "expr/builder.hpp"
#include "fault/faults.hpp"
#include "rv32/instr.hpp"
#include "symex/engine.hpp"

int main(int argc, char** argv) {
  using namespace rvsym;

  const char* id = argc > 1 ? argv[1] : "E7";
  const fault::InjectedError* error;
  try {
    error = &fault::errorById(id);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown error id '%s' (use E0..E9)\n", id);
    return 2;
  }

  std::printf("hunting injected error %s: %s (%s)\n\n", error->id,
              error->description, error->target);

  expr::ExprBuilder eb;
  core::CosimConfig cfg;
  cfg.rtl = rtl::fixedRtlConfig();
  cfg.iss.csr = iss::CsrConfig::specCorrect();
  cfg.instr_limit = 1;
  cfg.instr_constraint = core::CoSimulation::blockSystemInstructions();
  error->apply(cfg);

  symex::EngineOptions opts;
  opts.stop_on_error = true;
  opts.max_seconds = 120;
  core::CoSimulation cosim(eb, cfg);
  symex::Engine engine(eb, opts);
  const symex::EngineReport report = engine.run(cosim.program());

  std::printf("explored %llu paths (%llu partial), %llu instructions, "
              "%.3fs\n",
              static_cast<unsigned long long>(report.totalPaths()),
              static_cast<unsigned long long>(report.partialPaths()),
              static_cast<unsigned long long>(report.instructions),
              report.seconds);

  const symex::PathRecord* err = report.firstError();
  if (!err) {
    std::printf("error NOT found within budget\n");
    return 1;
  }

  std::printf("\n%s\n\nreproducing test vector:\n", err->message.c_str());
  if (err->has_test) {
    for (const symex::TestValue& v : err->test.values) {
      if (v.name.rfind("instr@", 0) == 0) {
        std::printf("  %-16s = 0x%08llx   %s\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value),
                    rv32::disassemble(static_cast<std::uint32_t>(v.value))
                        .c_str());
      } else if (v.name.rfind("reg_", 0) == 0) {
        std::printf("  %-16s = 0x%08llx\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value));
      } else if (v.name.rfind("mem@", 0) == 0 && v.value != 0) {
        std::printf("  %-16s = 0x%02llx\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value));
      }
    }
  }
  std::printf("\nverdict: %s exposed by a single symbolic instruction.\n",
              error->id);
  return 0;
}
