// Coverage growth of the generated test set — the paper's second output
// ("generate test vectors in order to find bugs and create a high
// coverage test set"). Explores the fixed processor pair in increasing
// path budgets and reports how quickly the emitted vectors cover the
// RV32I+Zicsr instruction space, then prints the final coverage summary
// and any holes.
#include <cstdio>

#include "core/cosim.hpp"
#include "core/coverage.hpp"
#include "expr/builder.hpp"
#include "symex/engine.hpp"

int main() {
  using namespace rvsym;

  std::printf("test-set coverage growth (fixed DUT, one symbolic "
              "instruction)\n\n");
  std::printf("%-8s %10s %10s %14s %8s\n", "paths", "opcodes", "CSRs",
              "distinct-words", "illegal");
  std::printf("%s\n", std::string(56, '-').c_str());

  core::CoverageCollector final_cov;
  for (std::uint64_t budget : {25u, 50u, 100u, 200u, 400u, 800u}) {
    expr::ExprBuilder eb;
    core::CosimConfig cfg;
    cfg.rtl = rtl::fixedRtlConfig();
    cfg.iss.csr = iss::CsrConfig::specCorrect();
    cfg.instr_limit = 1;

    symex::EngineOptions opts;
    opts.stop_on_error = false;
    opts.max_paths = budget;
    core::CoSimulation cosim(eb, cfg);
    symex::Engine engine(eb, opts);
    const symex::EngineReport report = engine.run(cosim.program());

    core::CoverageCollector cov;
    cov.addReport(report);
    std::printf("%-8llu %7zu/48 %10zu %14zu %8s\n",
                static_cast<unsigned long long>(budget), cov.opcodesCovered(),
                cov.csrAddressesCovered(), cov.distinctWords(),
                cov.coversIllegal() ? "yes" : "no");
    if (budget == 800) final_cov.addReport(report);
  }

  std::printf("\n%s", final_cov.summary().c_str());
  return final_cov.opcodeCoveragePercent() >= 75.0 ? 0 : 1;
}
