# Empty dependencies file for test_vector_replay.
# This may be replaced when dependencies are built.
