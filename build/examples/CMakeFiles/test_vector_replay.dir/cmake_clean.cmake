file(REMOVE_RECURSE
  "CMakeFiles/test_vector_replay.dir/test_vector_replay.cpp.o"
  "CMakeFiles/test_vector_replay.dir/test_vector_replay.cpp.o.d"
  "test_vector_replay"
  "test_vector_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
