file(REMOVE_RECURSE
  "CMakeFiles/coverage_report.dir/coverage_report.cpp.o"
  "CMakeFiles/coverage_report.dir/coverage_report.cpp.o.d"
  "coverage_report"
  "coverage_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
