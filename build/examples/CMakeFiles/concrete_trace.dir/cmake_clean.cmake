file(REMOVE_RECURSE
  "CMakeFiles/concrete_trace.dir/concrete_trace.cpp.o"
  "CMakeFiles/concrete_trace.dir/concrete_trace.cpp.o.d"
  "concrete_trace"
  "concrete_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concrete_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
