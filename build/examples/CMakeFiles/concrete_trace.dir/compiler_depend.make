# Empty compiler generated dependencies file for concrete_trace.
# This may be replaced when dependencies are built.
