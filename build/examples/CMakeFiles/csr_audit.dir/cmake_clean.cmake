file(REMOVE_RECURSE
  "CMakeFiles/csr_audit.dir/csr_audit.cpp.o"
  "CMakeFiles/csr_audit.dir/csr_audit.cpp.o.d"
  "csr_audit"
  "csr_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
