# Empty dependencies file for csr_audit.
# This may be replaced when dependencies are built.
