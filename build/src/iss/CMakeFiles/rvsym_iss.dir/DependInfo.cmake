
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/csrfile.cpp" "src/iss/CMakeFiles/rvsym_iss.dir/csrfile.cpp.o" "gcc" "src/iss/CMakeFiles/rvsym_iss.dir/csrfile.cpp.o.d"
  "/root/repo/src/iss/iss.cpp" "src/iss/CMakeFiles/rvsym_iss.dir/iss.cpp.o" "gcc" "src/iss/CMakeFiles/rvsym_iss.dir/iss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/rvsym_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/rvsym_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/rv32/CMakeFiles/rvsym_rv32.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rvsym_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
