file(REMOVE_RECURSE
  "CMakeFiles/rvsym_iss.dir/csrfile.cpp.o"
  "CMakeFiles/rvsym_iss.dir/csrfile.cpp.o.d"
  "CMakeFiles/rvsym_iss.dir/iss.cpp.o"
  "CMakeFiles/rvsym_iss.dir/iss.cpp.o.d"
  "librvsym_iss.a"
  "librvsym_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
