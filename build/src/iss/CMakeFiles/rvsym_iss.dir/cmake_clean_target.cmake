file(REMOVE_RECURSE
  "librvsym_iss.a"
)
