# Empty dependencies file for rvsym_iss.
# This may be replaced when dependencies are built.
