file(REMOVE_RECURSE
  "CMakeFiles/rvsym_rtl.dir/core.cpp.o"
  "CMakeFiles/rvsym_rtl.dir/core.cpp.o.d"
  "CMakeFiles/rvsym_rtl.dir/vcd.cpp.o"
  "CMakeFiles/rvsym_rtl.dir/vcd.cpp.o.d"
  "librvsym_rtl.a"
  "librvsym_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
