file(REMOVE_RECURSE
  "librvsym_rtl.a"
)
