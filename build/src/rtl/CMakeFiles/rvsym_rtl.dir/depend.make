# Empty dependencies file for rvsym_rtl.
# This may be replaced when dependencies are built.
