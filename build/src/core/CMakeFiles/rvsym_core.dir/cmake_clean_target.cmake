file(REMOVE_RECURSE
  "librvsym_core.a"
)
