file(REMOVE_RECURSE
  "CMakeFiles/rvsym_core.dir/classify.cpp.o"
  "CMakeFiles/rvsym_core.dir/classify.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/cosim.cpp.o"
  "CMakeFiles/rvsym_core.dir/cosim.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/coverage.cpp.o"
  "CMakeFiles/rvsym_core.dir/coverage.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/monitor.cpp.o"
  "CMakeFiles/rvsym_core.dir/monitor.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/procconfig.cpp.o"
  "CMakeFiles/rvsym_core.dir/procconfig.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/session.cpp.o"
  "CMakeFiles/rvsym_core.dir/session.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/symmem.cpp.o"
  "CMakeFiles/rvsym_core.dir/symmem.cpp.o.d"
  "CMakeFiles/rvsym_core.dir/voter.cpp.o"
  "CMakeFiles/rvsym_core.dir/voter.cpp.o.d"
  "librvsym_core.a"
  "librvsym_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
