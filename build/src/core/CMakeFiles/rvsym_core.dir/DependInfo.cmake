
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/rvsym_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/cosim.cpp" "src/core/CMakeFiles/rvsym_core.dir/cosim.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/cosim.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/rvsym_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/rvsym_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/procconfig.cpp" "src/core/CMakeFiles/rvsym_core.dir/procconfig.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/procconfig.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/rvsym_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/session.cpp.o.d"
  "/root/repo/src/core/symmem.cpp" "src/core/CMakeFiles/rvsym_core.dir/symmem.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/symmem.cpp.o.d"
  "/root/repo/src/core/voter.cpp" "src/core/CMakeFiles/rvsym_core.dir/voter.cpp.o" "gcc" "src/core/CMakeFiles/rvsym_core.dir/voter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iss/CMakeFiles/rvsym_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/rvsym_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/rvsym_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/rv32/CMakeFiles/rvsym_rv32.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rvsym_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/rvsym_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
