# Empty dependencies file for rvsym_core.
# This may be replaced when dependencies are built.
