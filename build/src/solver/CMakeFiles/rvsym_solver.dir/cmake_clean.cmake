file(REMOVE_RECURSE
  "CMakeFiles/rvsym_solver.dir/bitblast.cpp.o"
  "CMakeFiles/rvsym_solver.dir/bitblast.cpp.o.d"
  "CMakeFiles/rvsym_solver.dir/sat.cpp.o"
  "CMakeFiles/rvsym_solver.dir/sat.cpp.o.d"
  "CMakeFiles/rvsym_solver.dir/solver.cpp.o"
  "CMakeFiles/rvsym_solver.dir/solver.cpp.o.d"
  "librvsym_solver.a"
  "librvsym_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
