# Empty compiler generated dependencies file for rvsym_solver.
# This may be replaced when dependencies are built.
