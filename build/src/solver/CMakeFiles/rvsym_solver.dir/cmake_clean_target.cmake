file(REMOVE_RECURSE
  "librvsym_solver.a"
)
