file(REMOVE_RECURSE
  "librvsym_expr.a"
)
