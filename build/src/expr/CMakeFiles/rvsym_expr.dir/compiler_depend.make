# Empty compiler generated dependencies file for rvsym_expr.
# This may be replaced when dependencies are built.
