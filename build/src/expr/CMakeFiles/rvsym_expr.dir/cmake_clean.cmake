file(REMOVE_RECURSE
  "CMakeFiles/rvsym_expr.dir/builder.cpp.o"
  "CMakeFiles/rvsym_expr.dir/builder.cpp.o.d"
  "CMakeFiles/rvsym_expr.dir/eval.cpp.o"
  "CMakeFiles/rvsym_expr.dir/eval.cpp.o.d"
  "CMakeFiles/rvsym_expr.dir/expr.cpp.o"
  "CMakeFiles/rvsym_expr.dir/expr.cpp.o.d"
  "CMakeFiles/rvsym_expr.dir/print.cpp.o"
  "CMakeFiles/rvsym_expr.dir/print.cpp.o.d"
  "librvsym_expr.a"
  "librvsym_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
