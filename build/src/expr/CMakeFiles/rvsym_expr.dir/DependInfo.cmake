
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/builder.cpp" "src/expr/CMakeFiles/rvsym_expr.dir/builder.cpp.o" "gcc" "src/expr/CMakeFiles/rvsym_expr.dir/builder.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/expr/CMakeFiles/rvsym_expr.dir/eval.cpp.o" "gcc" "src/expr/CMakeFiles/rvsym_expr.dir/eval.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/expr/CMakeFiles/rvsym_expr.dir/expr.cpp.o" "gcc" "src/expr/CMakeFiles/rvsym_expr.dir/expr.cpp.o.d"
  "/root/repo/src/expr/print.cpp" "src/expr/CMakeFiles/rvsym_expr.dir/print.cpp.o" "gcc" "src/expr/CMakeFiles/rvsym_expr.dir/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
