file(REMOVE_RECURSE
  "librvsym_symex.a"
)
