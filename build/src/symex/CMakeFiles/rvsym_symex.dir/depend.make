# Empty dependencies file for rvsym_symex.
# This may be replaced when dependencies are built.
