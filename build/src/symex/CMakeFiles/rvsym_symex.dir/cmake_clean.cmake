file(REMOVE_RECURSE
  "CMakeFiles/rvsym_symex.dir/engine.cpp.o"
  "CMakeFiles/rvsym_symex.dir/engine.cpp.o.d"
  "CMakeFiles/rvsym_symex.dir/knownbits.cpp.o"
  "CMakeFiles/rvsym_symex.dir/knownbits.cpp.o.d"
  "CMakeFiles/rvsym_symex.dir/ktest.cpp.o"
  "CMakeFiles/rvsym_symex.dir/ktest.cpp.o.d"
  "CMakeFiles/rvsym_symex.dir/state.cpp.o"
  "CMakeFiles/rvsym_symex.dir/state.cpp.o.d"
  "librvsym_symex.a"
  "librvsym_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
