# Empty dependencies file for rvsym_fuzz.
# This may be replaced when dependencies are built.
