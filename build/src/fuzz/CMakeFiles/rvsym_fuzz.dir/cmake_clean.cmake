file(REMOVE_RECURSE
  "CMakeFiles/rvsym_fuzz.dir/fuzzer.cpp.o"
  "CMakeFiles/rvsym_fuzz.dir/fuzzer.cpp.o.d"
  "CMakeFiles/rvsym_fuzz.dir/hybrid.cpp.o"
  "CMakeFiles/rvsym_fuzz.dir/hybrid.cpp.o.d"
  "librvsym_fuzz.a"
  "librvsym_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
