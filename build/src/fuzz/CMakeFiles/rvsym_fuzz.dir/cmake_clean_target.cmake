file(REMOVE_RECURSE
  "librvsym_fuzz.a"
)
