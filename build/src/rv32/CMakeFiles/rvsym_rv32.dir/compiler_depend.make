# Empty compiler generated dependencies file for rvsym_rv32.
# This may be replaced when dependencies are built.
