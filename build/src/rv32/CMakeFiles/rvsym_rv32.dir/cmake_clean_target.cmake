file(REMOVE_RECURSE
  "librvsym_rv32.a"
)
