file(REMOVE_RECURSE
  "CMakeFiles/rvsym_rv32.dir/csr.cpp.o"
  "CMakeFiles/rvsym_rv32.dir/csr.cpp.o.d"
  "CMakeFiles/rvsym_rv32.dir/instr.cpp.o"
  "CMakeFiles/rvsym_rv32.dir/instr.cpp.o.d"
  "librvsym_rv32.a"
  "librvsym_rv32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_rv32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
