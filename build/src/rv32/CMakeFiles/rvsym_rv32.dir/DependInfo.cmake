
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rv32/csr.cpp" "src/rv32/CMakeFiles/rvsym_rv32.dir/csr.cpp.o" "gcc" "src/rv32/CMakeFiles/rvsym_rv32.dir/csr.cpp.o.d"
  "/root/repo/src/rv32/instr.cpp" "src/rv32/CMakeFiles/rvsym_rv32.dir/instr.cpp.o" "gcc" "src/rv32/CMakeFiles/rvsym_rv32.dir/instr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/rvsym_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
