file(REMOVE_RECURSE
  "librvsym_fault.a"
)
