# Empty compiler generated dependencies file for rvsym_fault.
# This may be replaced when dependencies are built.
