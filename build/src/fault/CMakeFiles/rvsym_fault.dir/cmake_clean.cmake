file(REMOVE_RECURSE
  "CMakeFiles/rvsym_fault.dir/faults.cpp.o"
  "CMakeFiles/rvsym_fault.dir/faults.cpp.o.d"
  "librvsym_fault.a"
  "librvsym_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
