file(REMOVE_RECURSE
  "CMakeFiles/rvsym-verify.dir/rvsym_verify.cpp.o"
  "CMakeFiles/rvsym-verify.dir/rvsym_verify.cpp.o.d"
  "rvsym-verify"
  "rvsym-verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvsym-verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
