# Empty dependencies file for rvsym-verify.
# This may be replaced when dependencies are built.
