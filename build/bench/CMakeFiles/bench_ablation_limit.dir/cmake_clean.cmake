file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_limit.dir/bench_ablation_limit.cpp.o"
  "CMakeFiles/bench_ablation_limit.dir/bench_ablation_limit.cpp.o.d"
  "bench_ablation_limit"
  "bench_ablation_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
