# Empty compiler generated dependencies file for bench_fuzz_vs_symex.
# This may be replaced when dependencies are built.
