file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzz_vs_symex.dir/bench_fuzz_vs_symex.cpp.o"
  "CMakeFiles/bench_fuzz_vs_symex.dir/bench_fuzz_vs_symex.cpp.o.d"
  "bench_fuzz_vs_symex"
  "bench_fuzz_vs_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzz_vs_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
