# Empty compiler generated dependencies file for bench_searchers.
# This may be replaced when dependencies are built.
