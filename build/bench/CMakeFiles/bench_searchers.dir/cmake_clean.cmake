file(REMOVE_RECURSE
  "CMakeFiles/bench_searchers.dir/bench_searchers.cpp.o"
  "CMakeFiles/bench_searchers.dir/bench_searchers.cpp.o.d"
  "bench_searchers"
  "bench_searchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_searchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
