# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/symex_test[1]_include.cmake")
include("/root/repo/build/tests/rv32_test[1]_include.cmake")
include("/root/repo/build/tests/iss_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/ktest_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/interrupt_test[1]_include.cmake")
include("/root/repo/build/tests/csrfile_test[1]_include.cmake")
include("/root/repo/build/tests/voter_test[1]_include.cmake")
include("/root/repo/build/tests/procconfig_test[1]_include.cmake")
