file(REMOVE_RECURSE
  "CMakeFiles/voter_test.dir/voter_test.cpp.o"
  "CMakeFiles/voter_test.dir/voter_test.cpp.o.d"
  "voter_test"
  "voter_test.pdb"
  "voter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
