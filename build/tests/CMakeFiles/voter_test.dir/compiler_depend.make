# Empty compiler generated dependencies file for voter_test.
# This may be replaced when dependencies are built.
