# Empty compiler generated dependencies file for ktest_test.
# This may be replaced when dependencies are built.
