file(REMOVE_RECURSE
  "CMakeFiles/ktest_test.dir/ktest_test.cpp.o"
  "CMakeFiles/ktest_test.dir/ktest_test.cpp.o.d"
  "ktest_test"
  "ktest_test.pdb"
  "ktest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
