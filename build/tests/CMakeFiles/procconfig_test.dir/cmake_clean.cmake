file(REMOVE_RECURSE
  "CMakeFiles/procconfig_test.dir/procconfig_test.cpp.o"
  "CMakeFiles/procconfig_test.dir/procconfig_test.cpp.o.d"
  "procconfig_test"
  "procconfig_test.pdb"
  "procconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
