# Empty dependencies file for procconfig_test.
# This may be replaced when dependencies are built.
