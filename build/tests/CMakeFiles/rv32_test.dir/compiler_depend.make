# Empty compiler generated dependencies file for rv32_test.
# This may be replaced when dependencies are built.
