# Empty dependencies file for rv32_test.
# This may be replaced when dependencies are built.
