file(REMOVE_RECURSE
  "CMakeFiles/rv32_test.dir/rv32_test.cpp.o"
  "CMakeFiles/rv32_test.dir/rv32_test.cpp.o.d"
  "rv32_test"
  "rv32_test.pdb"
  "rv32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rv32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
