file(REMOVE_RECURSE
  "CMakeFiles/interrupt_test.dir/interrupt_test.cpp.o"
  "CMakeFiles/interrupt_test.dir/interrupt_test.cpp.o.d"
  "interrupt_test"
  "interrupt_test.pdb"
  "interrupt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
