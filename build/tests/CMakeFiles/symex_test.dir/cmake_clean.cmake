file(REMOVE_RECURSE
  "CMakeFiles/symex_test.dir/symex_test.cpp.o"
  "CMakeFiles/symex_test.dir/symex_test.cpp.o.d"
  "symex_test"
  "symex_test.pdb"
  "symex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
