# Empty dependencies file for csrfile_test.
# This may be replaced when dependencies are built.
