file(REMOVE_RECURSE
  "CMakeFiles/csrfile_test.dir/csrfile_test.cpp.o"
  "CMakeFiles/csrfile_test.dir/csrfile_test.cpp.o.d"
  "csrfile_test"
  "csrfile_test.pdb"
  "csrfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csrfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
